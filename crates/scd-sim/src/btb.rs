//! Branch target buffer with the SCD jump-table-entry (JTE) overlay.
//!
//! Each entry carries a kind tag (Section III-B of the paper extends the
//! J/B flag): `Pc` entries are conventional PC-indexed target
//! predictions, `Jte` entries cache software jump-table entries keyed by
//! `(branch id, opcode)`, and `Vbbi` entries are keyed by a hash of
//! (PC, hint value). The tag participates in tag match, so the three key
//! spaces can never satisfy each other's lookups even when their raw key
//! bits collide.
//!
//! The replacement policy implements the paper's default: an incoming
//! JTE may evict a `Pc`/`Vbbi` entry but those can never evict a JTE,
//! and an optional cap bounds the number of resident JTEs (Section IV /
//! Fig. 11c-d).
//!
//! ## JTE cap semantics
//!
//! `jte_cap` is a **global** bound on resident JTEs across all sets, not
//! a per-set quota. While at the cap, an incoming JTE must displace
//! another JTE so the population stays bounded:
//!
//! 1. if its own set holds a JTE, the replacement policy picks among
//!    those ways (ordinary same-set replacement);
//! 2. otherwise the globally least-recently-used JTE (in whatever set)
//!    is invalidated first, and the insert then proceeds in its own set
//!    under the normal no-cap priority rules.
//!
//! Rule 2 fixes a seed defect where an at-cap insert whose set held no
//! JTE was silently dropped forever — even when the set had invalid
//! ways — permanently locking the cap's population into whichever sets
//! filled first. A JTE insert is now only ever dropped when `jte_cap`
//! is `Some(0)`.
//!
//! ## Two-level organization
//!
//! `BtbOrg::TwoLevel` replaces the idealized single table with the
//! hierarchy observed in real Arm frontends (Yavarzadeh et al., arXiv
//! 2412.05413): a small zero-bubble L0 backed by a larger L1 whose
//! predictions cost extra fetch bubbles, with XOR-folded hashed index
//! and (for verified entry kinds) partial tags. See
//! [`TwoLevelBtbConfig`] for the hash functions and
//! [`Btb::lookup_leveled`] / [`Btb::insert`] for the movement rules:
//!
//! * Lookups probe L0 then L1. An L1 hit is promoted into the entry's
//!   L0 set only when that set has a free way; otherwise it stays in
//!   L1. Lookups never displace a valid entry, so the trace-event
//!   stat reconstruction (`ReplayStats`) stays exact.
//! * Inserts fill L0. The replaced L0 victim demotes into its own
//!   hashed L1 set under the same JTE-priority rules; at most one
//!   entry is lost per insert and it is reported through the existing
//!   [`InsertOutcome`] fields. The hierarchy is exclusive.
//! * `jte_cap` bounds resident JTEs across *both* levels; the at-cap
//!   global-LRU displacement searches both banks.

use crate::cache::Replacement;
use std::fmt;

/// BTB organization: the paper's idealized single table, or a
/// realistic two-level hierarchy with hashed index/tag functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtbOrg {
    /// Single set-associative (or fully-associative) table indexed by
    /// the low key bits with full tags — the organization every paper
    /// figure uses.
    Ideal,
    /// Small L0 backed by a larger L1, both indexed by an XOR-fold of
    /// the key (extension study; module docs).
    TwoLevel(TwoLevelBtbConfig),
}

/// Geometry and hash parameters of the two-level organization.
///
/// Both banks index with `xor_fold(raw_key, fold_bits) & (sets - 1)`.
/// `Pc`/`Vbbi` entries store only `xor_fold(raw_key, tag_bits)` worth
/// of tag, so distinct branches can alias — those predictions are
/// verified at execute, so aliasing costs cycles, never correctness.
/// `Jte` entries keep their full key: a `bop` hit consumes the cached
/// target *unverified*, so a partial tag would change architectural
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLevelBtbConfig {
    /// L0 bank size in entries.
    pub l0_entries: usize,
    /// L0 associativity; `0` means fully associative.
    pub l0_ways: usize,
    /// L1 bank size in entries.
    pub l1_entries: usize,
    /// L1 associativity; `0` means fully associative.
    pub l1_ways: usize,
    /// XOR-fold chunk width for the set-index hash.
    pub fold_bits: u32,
    /// XOR-fold chunk width for the stored `Pc`/`Vbbi` tag.
    pub tag_bits: u32,
    /// Extra fetch bubbles when a prediction is served from L1.
    pub l1_bubbles: u64,
}

/// XOR-folds `v` into `bits`-wide chunks: the classic cheap BTB index
/// hash (chunk i is `v >> (i * bits)`, all chunks XORed together).
pub fn xor_fold(v: u64, bits: u32) -> u64 {
    debug_assert!((1..64).contains(&bits), "fold width must be 1..=63 bits");
    let mask = (1u64 << bits) - 1;
    let mut v = v;
    let mut acc = 0;
    while v != 0 {
        acc ^= v & mask;
        v >>= bits;
    }
    acc
}

impl TwoLevelBtbConfig {
    /// The default geometry of the study: a 32-entry 2-way L0 over a
    /// 512-entry 4-way L1, 8-bit folded index, 14-bit folded tags, two
    /// bubbles per L1-served prediction — the shape (though not the
    /// exact dimensions) reverse-engineered from Cortex/Neoverse
    /// frontends in arXiv 2412.05413.
    pub fn arm_like() -> Self {
        TwoLevelBtbConfig {
            l0_entries: 32,
            l0_ways: 2,
            l1_entries: 512,
            l1_ways: 4,
            fold_bits: 8,
            tag_bits: 14,
            l1_bubbles: 2,
        }
    }

    /// Returns a copy with a different index-hash fold width.
    pub fn with_fold_bits(mut self, bits: u32) -> Self {
        self.fold_bits = bits;
        self
    }

    /// Number of L0 sets.
    pub fn l0_sets(&self) -> usize {
        self.l0_entries / eff_ways(self.l0_entries, self.l0_ways)
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> usize {
        self.l1_entries / eff_ways(self.l1_entries, self.l1_ways)
    }

    /// L0 set index of a raw key (see [`BtbKey::raw`]).
    pub fn l0_index(&self, raw: u64) -> usize {
        (xor_fold(raw, self.fold_bits) as usize) & (self.l0_sets() - 1)
    }

    /// L1 set index of a raw key.
    pub fn l1_index(&self, raw: u64) -> usize {
        (xor_fold(raw, self.fold_bits) as usize) & (self.l1_sets() - 1)
    }

    /// The stored tag for a raw key: folded for verified kinds, full
    /// for `Jte` (see the type docs).
    pub fn tag_of(&self, kind: EntryKind, raw: u64) -> u64 {
        if kind == EntryKind::Jte {
            raw
        } else {
            xor_fold(raw, self.tag_bits)
        }
    }

    /// True when two raw keys of the same kind are indistinguishable
    /// to this organization at *both* levels (same hashed L1 set —
    /// which implies the same L0 set — and equal stored tags). The
    /// adversarial fuzz bias engineers key sets in one such class.
    pub fn aliases(&self, kind: EntryKind, a: u64, b: u64) -> bool {
        self.l1_index(a) == self.l1_index(b) && self.tag_of(kind, a) == self.tag_of(kind, b)
    }

    fn validate(&self) {
        assert!(
            (1..64).contains(&self.fold_bits) && (1..64).contains(&self.tag_bits),
            "fold/tag widths must be 1..=63 bits"
        );
        assert!(
            self.l0_sets() <= self.l1_sets(),
            "L0 must not have more sets than L1 (promotion index consistency)"
        );
        assert!(
            self.l1_sets() <= 1usize << self.fold_bits.min(63),
            "the folded index must cover the L1 set count"
        );
    }
}

fn eff_ways(entries: usize, ways: usize) -> usize {
    if ways == 0 {
        entries
    } else {
        ways
    }
}

/// BTB geometry and policy.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total number of entries (both banks combined for `TwoLevel`).
    pub entries: usize,
    /// Associativity; `0` means fully associative. For `TwoLevel` this
    /// mirrors the L1 associativity and only informs the area model —
    /// the banks carry their own geometry.
    pub ways: usize,
    /// Replacement policy within a set (both banks for `TwoLevel`).
    pub replacement: Replacement,
    /// Maximum number of resident JTEs across all sets — and, for
    /// `TwoLevel`, across both banks (`None` = unbounded). See the
    /// module docs for the at-cap displacement rules.
    pub jte_cap: Option<usize>,
    /// Table organization.
    pub org: BtbOrg,
}

// Hand-written so the `Ideal` organization renders exactly as it did
// before `org` existed: the snapshot fingerprint and the result-cache
// manifest both hash `{:?}` of the config, so the derived form would
// have invalidated every pre-existing golden and cached result. A
// `TwoLevel` organization appends the field, keeping distinct
// organizations distinct in cache keys.
impl fmt::Debug for BtbConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("BtbConfig");
        d.field("entries", &self.entries)
            .field("ways", &self.ways)
            .field("replacement", &self.replacement)
            .field("jte_cap", &self.jte_cap);
        if let BtbOrg::TwoLevel(tl) = self.org {
            d.field("org", &BtbOrg::TwoLevel(tl));
        }
        d.finish()
    }
}

impl BtbConfig {
    /// Set-associative BTB (paper simulator config: 256 entries, 2-way,
    /// round-robin).
    pub fn set_assoc(entries: usize, ways: usize, replacement: Replacement) -> Self {
        BtbConfig { entries, ways, replacement, jte_cap: None, org: BtbOrg::Ideal }
    }

    /// Fully-associative BTB (paper FPGA config: 62 entries, LRU).
    pub fn fully_assoc(entries: usize, replacement: Replacement) -> Self {
        BtbConfig { entries, ways: 0, replacement, jte_cap: None, org: BtbOrg::Ideal }
    }

    /// Two-level BTB (extension study; module docs). `entries`/`ways`
    /// summarize the combined capacity for the area model.
    pub fn two_level(tl: TwoLevelBtbConfig, replacement: Replacement) -> Self {
        BtbConfig {
            entries: tl.l0_entries + tl.l1_entries,
            ways: tl.l1_ways,
            replacement,
            jte_cap: None,
            org: BtbOrg::TwoLevel(tl),
        }
    }

    fn effective_ways(&self) -> usize {
        eff_ways(self.entries, self.ways)
    }
}

/// Which key space a BTB entry belongs to. Stored in the entry and
/// matched on lookup, so raw key collisions across spaces are inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Conventional PC-indexed entry.
    Pc,
    /// SCD jump table entry.
    Jte,
    /// VBBI entry (hash of PC and hint value).
    Vbbi,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    kind: EntryKind,
    key: u64,
    target: u64,
    lru: u64,
}

impl Default for Entry {
    fn default() -> Self {
        Entry { valid: false, kind: EntryKind::Pc, key: 0, target: 0, lru: 0 }
    }
}

/// Counters for BTB/JTE interaction, surfaced into `SimStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// JTE insertions performed (fresh entries; in-place target updates
    /// are not counted).
    pub jte_inserts: u64,
    /// JTE insertions dropped because of the JTE cap (only possible
    /// with `jte_cap == Some(0)`).
    pub jte_cap_skips: u64,
    /// Valid `Pc`/`Vbbi` entries evicted by an incoming JTE.
    pub btb_evicted_by_jte: u64,
    /// Resident JTEs displaced by an insert (same-set replacement or
    /// the at-cap global eviction).
    pub jte_evictions: u64,
    /// `Pc`/`Vbbi` insertions skipped because every way held a JTE.
    pub btb_blocked_by_jte: u64,
    /// `jte.flush` invocations.
    pub jte_flushes: u64,
    /// JTE entries invalidated by `jte.flush` invocations.
    pub jte_flushed: u64,
}

/// What [`Btb::insert`] did, for per-event tracing and invariant
/// checking. Together with the inserted key's kind this determines the
/// exact [`BtbStats`] delta of the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Tag match: the existing entry's target was refreshed in place.
    Updated,
    /// A new entry was written.
    Inserted {
        /// Kind of the valid entry this insert displaced in its own
        /// set, if any.
        evicted: Option<EntryKind>,
        /// True when the at-cap rule additionally invalidated the
        /// globally least-recently-used JTE in another set.
        remote_jte_evicted: bool,
    },
    /// A JTE insert was dropped: the cap is in force and there is no
    /// resident JTE to displace (`jte_cap == Some(0)`).
    CapSkipped,
    /// A `Pc`/`Vbbi` insert found every candidate way holding a JTE.
    Blocked,
}

/// Diagnostic counters specific to the two-level organization. Kept
/// out of [`BtbStats`] deliberately: that struct is pinned into
/// `SimStats` goldens and reconstructed from trace insert events, and
/// these counters move on *lookups* (hits, promotions), which emit no
/// events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoLevelStats {
    /// Lookups served by the L0 bank.
    pub l0_hits: u64,
    /// Lookups served by the L1 bank (each costs `l1_bubbles`).
    pub l1_hits: u64,
    /// L1 hits moved up into a free L0 way.
    pub promotions: u64,
    /// L0 victims moved down into their hashed L1 set.
    pub demotions: u64,
    /// L0 victims dropped because every way of their L1 set held a
    /// JTE the victim was not allowed to displace.
    pub demotion_drops: u64,
}

/// The valid entries of one bank, as `(kind, key, target)` triples
/// (see [`Btb::snapshot`] / [`Btb::snapshot_levels`]).
pub type LevelSnapshot = Vec<(EntryKind, u64, u64)>;

/// One bank (level) of the two-level organization. Same entry format
/// and replacement machinery as the Ideal table; only indexing and
/// tagging differ, and those live in [`TwoLevelBtbConfig`].
#[derive(Debug)]
struct Bank {
    sets: usize,
    ways: usize,
    entries: Vec<Entry>,
    rr_next: Vec<usize>,
}

impl Bank {
    fn new(entries: usize, ways: usize) -> Self {
        let ways = eff_ways(entries, ways);
        assert!(ways > 0 && entries > 0, "two-level BTB banks must be non-empty");
        assert_eq!(entries % ways, 0, "bank entries must divide into ways");
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "bank set count must be a power of two");
        Bank { sets, ways, entries: vec![Entry::default(); entries], rr_next: vec![0; sets] }
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        debug_assert!(set < self.sets);
        let base = set * self.ways;
        base..base + self.ways
    }

    /// Victim way within `set` under the priority filter `allowed`,
    /// mirroring the Ideal victim-selection rules. Returns an absolute
    /// entry index.
    fn pick_victim(
        &mut self,
        set: usize,
        replacement: Replacement,
        allowed: impl Fn(&Entry) -> bool,
    ) -> Option<usize> {
        let r = self.set_range(set);
        match replacement {
            Replacement::Lru => {
                let mut best: Option<(usize, u64)> = None;
                for (i, e) in self.entries[r.clone()].iter().enumerate() {
                    if !allowed(e) {
                        continue;
                    }
                    let score = if e.valid { e.lru } else { 0 };
                    if best.is_none_or(|(_, b)| score < b) {
                        best = Some((i, score));
                    }
                }
                best.map(|(i, _)| r.start + i)
            }
            Replacement::RoundRobin => {
                let start = self.rr_next[set];
                for k in 0..self.ways {
                    let i = (start + k) % self.ways;
                    if allowed(&self.entries[r.start + i]) {
                        self.rr_next[set] = (i + 1) % self.ways;
                        return Some(r.start + i);
                    }
                }
                None
            }
        }
    }
}

/// Live state of the two-level organization.
#[derive(Debug)]
struct TwoLevelState {
    tl: TwoLevelBtbConfig,
    l0: Bank,
    l1: Bank,
    stats: TwoLevelStats,
}

/// The branch target buffer.
#[derive(Debug)]
pub struct Btb {
    cfg: BtbConfig,
    sets: usize,
    ways: usize,
    entries: Vec<Entry>,
    rr_next: Vec<usize>,
    tick: u64,
    jte_count: usize,
    /// Two-level banks; `None` for the Ideal organization (whose state
    /// lives in `entries`/`rr_next` above, byte-compatible with every
    /// pre-existing snapshot).
    two: Option<TwoLevelState>,
    /// Interaction counters.
    pub stats: BtbStats,
}

/// Key space separator so PC keys, JTE keys and VBBI keys never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtbKey {
    /// Conventional PC-indexed entry.
    Pc(u64),
    /// SCD jump table entry: (branch id, opcode).
    Jte {
        /// Branch ID (Section IV, multiple jump tables).
        bid: u8,
        /// The masked opcode value from Rop.
        opcode: u64,
    },
    /// VBBI entry: hash of (PC, hint value).
    Vbbi(u64),
}

impl BtbKey {
    /// The key space this key lives in.
    pub fn kind(self) -> EntryKind {
        self.raw().1
    }

    /// The raw index/tag bits and kind of this key — what the table
    /// actually stores and hashes. Public so tests and the adversarial
    /// program generator can reason about collision classes.
    pub fn raw(self) -> (u64, EntryKind) {
        match self {
            // PCs are 4-byte aligned; drop the known-zero bits for indexing.
            BtbKey::Pc(pc) => (pc >> 2, EntryKind::Pc),
            BtbKey::Jte { bid, opcode } => (opcode ^ ((bid as u64) << 56), EntryKind::Jte),
            BtbKey::Vbbi(h) => (h, EntryKind::Vbbi),
        }
    }
}

impl Btb {
    /// Builds a BTB from its configuration.
    ///
    /// # Panics
    /// Panics if `entries` is not divisible into power-of-two sets.
    pub fn new(cfg: BtbConfig) -> Self {
        if let BtbOrg::TwoLevel(tl) = cfg.org {
            tl.validate();
            let l0 = Bank::new(tl.l0_entries, tl.l0_ways);
            let l1 = Bank::new(tl.l1_entries, tl.l1_ways);
            return Btb {
                cfg,
                sets: 0,
                ways: 0,
                entries: Vec::new(),
                rr_next: Vec::new(),
                tick: 0,
                jte_count: 0,
                two: Some(TwoLevelState { tl, l0, l1, stats: TwoLevelStats::default() }),
                stats: BtbStats::default(),
            };
        }
        let ways = cfg.effective_ways();
        assert!(ways > 0 && cfg.entries > 0, "BTB must be non-empty");
        assert_eq!(cfg.entries % ways, 0, "entries must divide into ways");
        let sets = cfg.entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Btb {
            cfg,
            sets,
            ways,
            entries: vec![Entry::default(); cfg.entries],
            rr_next: vec![0; sets],
            tick: 0,
            jte_count: 0,
            two: None,
            stats: BtbStats::default(),
        }
    }

    /// The configuration this BTB was built with.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    /// Number of currently resident JTEs.
    pub fn resident_jtes(&self) -> usize {
        self.jte_count
    }

    #[inline]
    fn set_of(&self, raw: u64) -> usize {
        (raw as usize) & (self.sets - 1)
    }

    /// Looks up a key; returns the cached target on hit and refreshes LRU.
    #[inline]
    pub fn lookup(&mut self, key: BtbKey) -> Option<u64> {
        self.lookup_leveled(key).map(|(t, _)| t)
    }

    /// Looks up a key, reporting which level served the hit:
    /// `(target, from_l1)`. `from_l1` is always false for the Ideal
    /// organization; when true, consuming the prediction costs
    /// [`Btb::l1_hit_bubbles`] extra fetch bubbles.
    #[inline]
    pub fn lookup_leveled(&mut self, key: BtbKey) -> Option<(u64, bool)> {
        self.tick += 1;
        let (raw, kind) = key.raw();
        if self.two.is_some() {
            return self.lookup_two_level(raw, kind);
        }
        let set = self.set_of(raw);
        let base = set * self.ways;
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.kind == kind && e.key == raw {
                e.lru = self.tick;
                return Some((e.target, false));
            }
        }
        None
    }

    /// Two-level probe: L0, then L1. An L1 hit promotes into a free
    /// way of the entry's L0 set when one exists; a busy set leaves
    /// the entry in L1 (paying the bubble again next time) so that
    /// lookups never displace a valid entry — the trace-replay stat
    /// reconstruction relies on lookups being loss-free.
    fn lookup_two_level(&mut self, raw: u64, kind: EntryKind) -> Option<(u64, bool)> {
        let tick = self.tick;
        let t = self.two.as_mut().expect("two-level state");
        let tl = t.tl;
        let tag = tl.tag_of(kind, raw);
        let r0 = t.l0.set_range(tl.l0_index(raw));
        for e in &mut t.l0.entries[r0.clone()] {
            if e.valid && e.kind == kind && tl.tag_of(e.kind, e.key) == tag {
                e.lru = tick;
                t.stats.l0_hits += 1;
                return Some((e.target, false));
            }
        }
        let r1 = t.l1.set_range(tl.l1_index(raw));
        let hit = t.l1.entries[r1.clone()]
            .iter()
            .position(|e| e.valid && e.kind == kind && tl.tag_of(e.kind, e.key) == tag)
            .map(|i| r1.start + i)?;
        t.stats.l1_hits += 1;
        // An L1-set hit implies equal folded indices, and L0 has no
        // more sets than L1 (validated), so the probe's L0 set is also
        // the entry's own L0 set — the promotion lands where a future
        // probe of this key will look.
        if let Some(w) = t.l0.entries[r0.clone()].iter().position(|e| !e.valid) {
            let mut e = t.l1.entries[hit];
            t.l1.entries[hit].valid = false;
            e.lru = tick;
            t.l0.entries[r0.start + w] = e;
            t.stats.promotions += 1;
            Some((e.target, true))
        } else {
            t.l1.entries[hit].lru = tick;
            Some((t.l1.entries[hit].target, true))
        }
    }

    /// Inserts or updates an entry for `key`, reporting what happened.
    pub fn insert(&mut self, key: BtbKey, target: u64) -> InsertOutcome {
        self.tick += 1;
        let (raw, kind) = key.raw();
        if self.two.is_some() {
            return self.insert_two_level(raw, kind, target);
        }
        let is_jte = kind == EntryKind::Jte;
        let set = self.set_of(raw);
        let base = set * self.ways;

        // Update in place on tag match (population unchanged, so the cap
        // never applies here).
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.kind == kind && e.key == raw {
                e.target = target;
                e.lru = self.tick;
                return InsertOutcome::Updated;
            }
        }

        let at_cap = is_jte && self.cfg.jte_cap.is_some_and(|cap| self.jte_count >= cap);
        let own_set_has_jte = self.entries[base..base + self.ways]
            .iter()
            .any(|e| e.valid && e.kind == EntryKind::Jte);

        // At the cap with no JTE in our own set: make room by evicting
        // the globally least-recently-used JTE, then insert under the
        // normal rules (module docs, rule 2).
        let mut remote_jte_evicted = false;
        let at_cap = if at_cap && !own_set_has_jte {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.valid && e.kind == EntryKind::Jte)
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.entries[i].valid = false;
                    self.jte_count -= 1;
                    self.stats.jte_evictions += 1;
                    remote_jte_evicted = true;
                    false
                }
                None => {
                    // cap == 0: there is no JTE anywhere to displace.
                    self.stats.jte_cap_skips += 1;
                    return InsertOutcome::CapSkipped;
                }
            }
        } else {
            at_cap
        };

        // Choose a victim way subject to the priority rules.
        let allowed = |e: &Entry| -> bool {
            if !e.valid {
                // An invalid way is always usable, except that a JTE at
                // cap must replace another JTE to keep the population
                // bounded (only reachable when the set holds one).
                return !at_cap;
            }
            if is_jte {
                if at_cap {
                    e.kind == EntryKind::Jte
                } else {
                    true // JTE priority: may evict anything
                }
            } else {
                e.kind != EntryKind::Jte // Pc/Vbbi entries never evict JTEs
            }
        };

        let ways = &self.entries[base..base + self.ways];
        let victim = match self.cfg.replacement {
            Replacement::Lru => {
                let mut best: Option<(usize, u64)> = None;
                for (i, e) in ways.iter().enumerate() {
                    if !allowed(e) {
                        continue;
                    }
                    let score = if e.valid { e.lru } else { 0 };
                    if best.is_none_or(|(_, b)| score < b) {
                        best = Some((i, score));
                    }
                }
                best.map(|(i, _)| i)
            }
            Replacement::RoundRobin => {
                let start = self.rr_next[set];
                let mut found = None;
                for k in 0..self.ways {
                    let i = (start + k) % self.ways;
                    if allowed(&ways[i]) {
                        found = Some(i);
                        self.rr_next[set] = (i + 1) % self.ways;
                        break;
                    }
                }
                found
            }
        };

        let Some(victim) = victim else {
            debug_assert!(!is_jte, "a JTE insert always finds a victim once under the cap");
            self.stats.btb_blocked_by_jte += 1;
            return InsertOutcome::Blocked;
        };

        let old = self.entries[base + victim];
        let evicted = old.valid.then_some(old.kind);
        if old.valid {
            if old.kind == EntryKind::Jte {
                self.jte_count -= 1;
                self.stats.jte_evictions += 1;
            } else if is_jte {
                self.stats.btb_evicted_by_jte += 1;
            }
        }
        if is_jte {
            self.jte_count += 1;
            self.stats.jte_inserts += 1;
        }
        self.entries[base + victim] = Entry { valid: true, kind, key: raw, target, lru: self.tick };
        InsertOutcome::Inserted { evicted, remote_jte_evicted }
    }

    /// Two-level insert: new entries fill L0; the replaced L0 victim
    /// demotes into its own hashed L1 set under the victim's priority
    /// rules. The chain loses at most one entry (the L1 demotion
    /// victim, or a demotion-blocked drop), reported as `evicted` —
    /// exactly the shape the trace-event stat reconstruction expects.
    /// Priority propagates: a `Pc`/`Vbbi` insert can only displace a
    /// `Pc`/`Vbbi` L0 victim, whose demotion again cannot displace a
    /// JTE, so a non-JTE insert never chain-loses a JTE.
    fn insert_two_level(&mut self, raw: u64, kind: EntryKind, target: u64) -> InsertOutcome {
        let is_jte = kind == EntryKind::Jte;
        let tick = self.tick;
        let cap = self.cfg.jte_cap;
        let replacement = self.cfg.replacement;
        let t = self.two.as_mut().expect("two-level state");
        let tl = t.tl;
        let tag = tl.tag_of(kind, raw);
        let s0 = tl.l0_index(raw);
        let s1 = tl.l1_index(raw);

        // Update in place on tag match in either level (population
        // unchanged, so the cap never applies here).
        for (bank, set) in [(&mut t.l0, s0), (&mut t.l1, s1)] {
            let r = bank.set_range(set);
            for e in &mut bank.entries[r] {
                if e.valid && e.kind == kind && tl.tag_of(e.kind, e.key) == tag {
                    e.target = target;
                    e.lru = tick;
                    return InsertOutcome::Updated;
                }
            }
        }

        let at_cap = is_jte && cap.is_some_and(|c| self.jte_count >= c);
        let r0 = t.l0.set_range(s0);
        let own_set_has_jte =
            t.l0.entries[r0].iter().any(|e| e.valid && e.kind == EntryKind::Jte);

        // At the cap with no JTE in the destination L0 set: evict the
        // globally least-recently-used JTE — in either bank — then
        // insert under the normal rules (module docs, rule 2).
        let mut remote_jte_evicted = false;
        let at_cap = if at_cap && !own_set_has_jte {
            let victim = t
                .l0
                .entries
                .iter_mut()
                .chain(t.l1.entries.iter_mut())
                .filter(|e| e.valid && e.kind == EntryKind::Jte)
                .min_by_key(|e| e.lru);
            match victim {
                Some(e) => {
                    e.valid = false;
                    self.jte_count -= 1;
                    self.stats.jte_evictions += 1;
                    remote_jte_evicted = true;
                    false
                }
                None => {
                    // cap == 0: there is no JTE anywhere to displace.
                    self.stats.jte_cap_skips += 1;
                    return InsertOutcome::CapSkipped;
                }
            }
        } else {
            at_cap
        };

        // L0 victim under the same priority rules as the Ideal insert.
        let allowed = |e: &Entry| -> bool {
            if !e.valid {
                return !at_cap;
            }
            if is_jte {
                if at_cap {
                    e.kind == EntryKind::Jte
                } else {
                    true
                }
            } else {
                e.kind != EntryKind::Jte
            }
        };
        let Some(v0) = t.l0.pick_victim(s0, replacement, allowed) else {
            debug_assert!(!is_jte, "a JTE insert always finds a victim once under the cap");
            self.stats.btb_blocked_by_jte += 1;
            return InsertOutcome::Blocked;
        };

        let old = t.l0.entries[v0];
        let mut lost: Option<Entry> = None;
        if old.valid {
            if at_cap {
                // Same-set at-cap JTE replacement: the old JTE is
                // displaced outright, keeping the population at the cap.
                debug_assert_eq!(old.kind, EntryKind::Jte);
                lost = Some(old);
            } else {
                // Demote the L0 victim into its own hashed L1 set.
                let d_allowed = |e: &Entry| -> bool {
                    !e.valid || old.kind == EntryKind::Jte || e.kind != EntryKind::Jte
                };
                match t.l1.pick_victim(tl.l1_index(old.key), replacement, d_allowed) {
                    Some(v1) => {
                        let dv = t.l1.entries[v1];
                        if dv.valid {
                            lost = Some(dv);
                        }
                        t.l1.entries[v1] = old;
                        t.stats.demotions += 1;
                    }
                    None => {
                        // Every way of the demotion set holds a JTE the
                        // Pc/Vbbi victim may not displace: it is dropped.
                        lost = Some(old);
                        t.stats.demotion_drops += 1;
                    }
                }
            }
        }

        let evicted = lost.map(|e| e.kind);
        if let Some(e) = lost {
            if e.kind == EntryKind::Jte {
                self.jte_count -= 1;
                self.stats.jte_evictions += 1;
            } else if is_jte {
                self.stats.btb_evicted_by_jte += 1;
            }
        }
        if is_jte {
            self.jte_count += 1;
            self.stats.jte_inserts += 1;
        }
        let t = self.two.as_mut().expect("two-level state");
        t.l0.entries[v0] = Entry { valid: true, kind, key: raw, target, lru: tick };
        InsertOutcome::Inserted { evicted, remote_jte_evicted }
    }

    /// Every entry slot, in a stable order: the Ideal array, then (for
    /// two-level) L0 followed by L1. Exactly one of those is non-empty.
    fn all_entries(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.entries
            .iter()
            .chain(self.two.iter().flat_map(|t| t.l0.entries.iter().chain(t.l1.entries.iter())))
    }

    fn all_entries_mut(&mut self) -> impl Iterator<Item = &mut Entry> + '_ {
        self.entries.iter_mut().chain(
            self.two
                .iter_mut()
                .flat_map(|t| t.l0.entries.iter_mut().chain(t.l1.entries.iter_mut())),
        )
    }

    /// A snapshot of the valid entries: `(kind, key, target)`, in
    /// array order (L0 before L1 for the two-level organization). For
    /// diagnostics and the Fig. 6 walk-through.
    pub fn snapshot(&self) -> LevelSnapshot {
        self.all_entries().filter(|e| e.valid).map(|e| (e.kind, e.key, e.target)).collect()
    }

    /// Valid entries split by level: `(l0, l1)`. The Ideal
    /// organization reports everything in the first list. For the
    /// two-level exclusivity/inclusion proptests.
    pub fn snapshot_levels(&self) -> (LevelSnapshot, LevelSnapshot) {
        let collect = |es: &[Entry]| {
            es.iter().filter(|e| e.valid).map(|e| (e.kind, e.key, e.target)).collect()
        };
        match &self.two {
            Some(t) => (collect(&t.l0.entries), collect(&t.l1.entries)),
            None => (collect(&self.entries), Vec::new()),
        }
    }

    /// Extra fetch bubbles charged when a prediction is served by the
    /// L1 bank of a two-level organization (0 for Ideal).
    pub fn l1_hit_bubbles(&self) -> u64 {
        self.two.as_ref().map_or(0, |t| t.tl.l1_bubbles)
    }

    /// Two-level diagnostic counters; `None` for the Ideal organization.
    pub fn two_level_stats(&self) -> Option<TwoLevelStats> {
        self.two.as_ref().map(|t| t.stats)
    }

    /// `jte.flush`: invalidates every JTE but leaves other entries
    /// intact. Returns the number of entries invalidated.
    pub fn flush_jtes(&mut self) -> u64 {
        let mut flushed = 0;
        for e in self.all_entries_mut() {
            if e.valid && e.kind == EntryKind::Jte {
                e.valid = false;
                flushed += 1;
            }
        }
        self.jte_count = 0;
        self.stats.jte_flushes += 1;
        self.stats.jte_flushed += flushed;
        flushed
    }

    /// Checks the population identity `resident JTEs == inserts -
    /// evictions - flush losses` against the counters; used by the
    /// stat-invariant checker.
    ///
    /// # Panics
    /// Panics (with both sides of the identity) when it is violated.
    pub fn assert_population_invariant(&self) {
        let derived = self
            .stats
            .jte_inserts
            .checked_sub(self.stats.jte_evictions + self.stats.jte_flushed)
            .expect("JTE losses cannot exceed inserts");
        assert_eq!(
            self.jte_count as u64, derived,
            "resident JTEs diverged from insert/eviction/flush accounting"
        );
        debug_assert_eq!(
            self.jte_count,
            self.all_entries().filter(|e| e.valid && e.kind == EntryKind::Jte).count(),
            "cached JTE population diverged from the entry array"
        );
    }

    // ---- fault-injection hooks (crate::fault) ----

    /// Fault hook: invalidates one pseudo-randomly chosen resident JTE,
    /// modeling parity-detected corruption. The loss is counted as a JTE
    /// eviction so the population identity keeps balancing. Returns the
    /// number of JTEs invalidated (0 or 1).
    pub(crate) fn fault_invalidate_jte(&mut self, r: u64) -> u64 {
        let resident = self.all_entries().filter(|e| e.valid && e.kind == EntryKind::Jte).count();
        if resident == 0 {
            return 0;
        }
        let pick = (r % resident as u64) as usize;
        let e = self
            .all_entries_mut()
            .filter(|e| e.valid && e.kind == EntryKind::Jte)
            .nth(pick)
            .expect("pick < resident count");
        e.valid = false;
        self.jte_count -= 1;
        self.stats.jte_evictions += 1;
        1
    }

    /// Fault hook: invalidates every entry. Resident JTEs lost this way
    /// are counted as JTE evictions (they were not `jte.flush`ed);
    /// `Pc`/`Vbbi` entries have no population counters and simply
    /// vanish. Returns the number of JTEs lost.
    pub(crate) fn fault_flush_all(&mut self) -> u64 {
        let mut lost = 0;
        for e in self.all_entries_mut() {
            if e.valid && e.kind == EntryKind::Jte {
                lost += 1;
            }
            e.valid = false;
        }
        self.jte_count = 0;
        self.stats.jte_evictions += lost;
        lost
    }

    /// Fault hook: flips one pseudo-random bit in the key or target of a
    /// pseudo-randomly chosen valid **non-JTE** entry. Those entries
    /// hold verified predictions (resolved at execute), so the flip can
    /// only cost cycles. The kind tag is never touched — a corrupted
    /// entry can never cross into the unverified JTE key space.
    pub(crate) fn fault_flip_bit(&mut self, r: u64) {
        let candidates = self.all_entries().filter(|e| e.valid && e.kind != EntryKind::Jte).count();
        if candidates == 0 {
            return;
        }
        let pick = (r % candidates as u64) as usize;
        let e = self
            .all_entries_mut()
            .filter(|e| e.valid && e.kind != EntryKind::Jte)
            .nth(pick)
            .expect("pick < candidate count");
        let bit = (r >> 32) % 128;
        if bit < 64 {
            e.key ^= 1 << bit;
        } else {
            e.target ^= 1 << (bit - 64);
        }
    }

    // ---- checkpoint codec (crate::snapshot) ----

    pub(crate) fn snapshot_words(&self, out: &mut Vec<u64>) {
        // The Ideal layout (one entry array + RR state + scalar tail)
        // is byte-identical to every pre-two-level snapshot; the
        // two-level layout writes both banks in L0, L1 order and
        // appends its diagnostic counters after the shared tail.
        match &self.two {
            Some(t) => {
                snapshot_entry_words(&t.l0.entries, &t.l0.rr_next, out);
                snapshot_entry_words(&t.l1.entries, &t.l1.rr_next, out);
            }
            None => snapshot_entry_words(&self.entries, &self.rr_next, out),
        }
        out.push(self.tick);
        out.push(self.jte_count as u64);
        let s = &self.stats;
        out.extend_from_slice(&[
            s.jte_inserts,
            s.jte_cap_skips,
            s.btb_evicted_by_jte,
            s.jte_evictions,
            s.btb_blocked_by_jte,
            s.jte_flushes,
            s.jte_flushed,
        ]);
        if let Some(t) = &self.two {
            let ts = &t.stats;
            out.extend_from_slice(&[
                ts.l0_hits,
                ts.l1_hits,
                ts.promotions,
                ts.demotions,
                ts.demotion_drops,
            ]);
        }
    }

    pub(crate) fn restore_words(
        &mut self,
        c: &mut crate::snapshot::Cursor,
    ) -> Result<(), crate::SnapshotError> {
        match &mut self.two {
            Some(t) => {
                restore_entry_words(&mut t.l0.entries, &mut t.l0.rr_next, c)?;
                restore_entry_words(&mut t.l1.entries, &mut t.l1.rr_next, c)?;
            }
            None => restore_entry_words(&mut self.entries, &mut self.rr_next, c)?,
        }
        self.tick = c.next()?;
        self.jte_count = c.next()? as usize;
        let s = &mut self.stats;
        s.jte_inserts = c.next()?;
        s.jte_cap_skips = c.next()?;
        s.btb_evicted_by_jte = c.next()?;
        s.jte_evictions = c.next()?;
        s.btb_blocked_by_jte = c.next()?;
        s.jte_flushes = c.next()?;
        s.jte_flushed = c.next()?;
        if let Some(t) = &mut self.two {
            let ts = &mut t.stats;
            ts.l0_hits = c.next()?;
            ts.l1_hits = c.next()?;
            ts.promotions = c.next()?;
            ts.demotions = c.next()?;
            ts.demotion_drops = c.next()?;
        }
        Ok(())
    }
}

fn snapshot_entry_words(entries: &[Entry], rr_next: &[usize], out: &mut Vec<u64>) {
    out.push(entries.len() as u64);
    for e in entries {
        let kind = match e.kind {
            EntryKind::Pc => 0u64,
            EntryKind::Jte => 1,
            EntryKind::Vbbi => 2,
        };
        out.push(e.valid as u64 | (kind << 1));
        out.push(e.key);
        out.push(e.target);
        out.push(e.lru);
    }
    out.push(rr_next.len() as u64);
    out.extend(rr_next.iter().map(|&v| v as u64));
}

fn restore_entry_words(
    entries: &mut [Entry],
    rr_next: &mut [usize],
    c: &mut crate::snapshot::Cursor,
) -> Result<(), crate::SnapshotError> {
    let n = c.next()? as usize;
    crate::snapshot::check(n == entries.len(), "snapshot BTB geometry mismatch")?;
    for e in entries {
        let flags = c.next()?;
        e.valid = flags & 1 != 0;
        e.kind = match flags >> 1 {
            0 => EntryKind::Pc,
            1 => EntryKind::Jte,
            2 => EntryKind::Vbbi,
            _ => {
                return Err(crate::SnapshotError::Format(
                    "snapshot holds unknown BTB entry kind".into(),
                ))
            }
        };
        e.key = c.next()?;
        e.target = c.next()?;
        e.lru = c.next()?;
    }
    let nrr = c.next()? as usize;
    crate::snapshot::check(nrr == rr_next.len(), "snapshot BTB set-count mismatch")?;
    for v in rr_next {
        *v = c.next()? as usize;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb(entries: usize, ways: usize) -> Btb {
        Btb::new(BtbConfig::set_assoc(entries, ways, Replacement::Lru))
    }

    #[test]
    fn pc_lookup_roundtrip() {
        let mut b = btb(8, 2);
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), None);
        assert!(matches!(
            b.insert(BtbKey::Pc(0x1000), 0x2000),
            InsertOutcome::Inserted { evicted: None, .. }
        ));
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(0x2000));
        assert_eq!(b.insert(BtbKey::Pc(0x1000), 0x3000), InsertOutcome::Updated);
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(0x3000));
    }

    #[test]
    fn jte_and_pc_do_not_alias() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 5 }, 0xAAAA);
        // A PC whose raw key equals the JTE's raw key must not hit it.
        assert_eq!(b.lookup(BtbKey::Pc(5 << 2)), None);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 5 }), Some(0xAAAA));
        // Different branch id: different entry.
        assert_eq!(b.lookup(BtbKey::Jte { bid: 1, opcode: 5 }), None);
    }

    #[test]
    fn jte_evicts_btb_but_not_vice_versa() {
        // One set of 2 ways.
        let mut b = btb(2, 2);
        b.insert(BtbKey::Pc(0x1000), 1);
        b.insert(BtbKey::Pc(0x2000), 2);
        // JTE insertion must evict one of the B entries.
        let out = b.insert(BtbKey::Jte { bid: 0, opcode: 9 }, 3);
        assert_eq!(
            out,
            InsertOutcome::Inserted { evicted: Some(EntryKind::Pc), remote_jte_evicted: false }
        );
        assert_eq!(b.resident_jtes(), 1);
        assert_eq!(b.stats.btb_evicted_by_jte, 1);
        // Fill the other way with a JTE too.
        b.insert(BtbKey::Jte { bid: 0, opcode: 10 }, 4);
        assert_eq!(b.resident_jtes(), 2);
        // Now a B entry cannot get in.
        assert_eq!(b.insert(BtbKey::Pc(0x3000), 5), InsertOutcome::Blocked);
        assert_eq!(b.lookup(BtbKey::Pc(0x3000)), None);
        assert_eq!(b.stats.btb_blocked_by_jte, 1);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 9 }), Some(3));
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 10 }), Some(4));
    }

    #[test]
    fn jte_cap_enforced() {
        let mut cfg = BtbConfig::fully_assoc(8, Replacement::Lru);
        cfg.jte_cap = Some(2);
        let mut b = Btb::new(cfg);
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 1);
        b.insert(BtbKey::Jte { bid: 0, opcode: 2 }, 2);
        assert_eq!(b.resident_jtes(), 2);
        // Third JTE replaces an existing one (LRU: opcode 1), keeping count at cap.
        b.insert(BtbKey::Jte { bid: 0, opcode: 3 }, 3);
        assert_eq!(b.resident_jtes(), 2);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 3 }), Some(3));
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), None);
        b.assert_population_invariant();
    }

    #[test]
    fn at_cap_insert_into_jteless_set_displaces_global_lru() {
        // 4 sets x 2 ways. Cap of 1: the first JTE lands in set 1; a
        // second JTE whose key maps to set 2 must displace it rather
        // than being dropped forever (the seed defect).
        let mut cfg = BtbConfig::set_assoc(8, 2, Replacement::Lru);
        cfg.jte_cap = Some(1);
        let mut b = Btb::new(cfg);
        assert!(matches!(
            b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 0x100),
            InsertOutcome::Inserted { evicted: None, remote_jte_evicted: false }
        ));
        assert_eq!(b.resident_jtes(), 1);
        let out = b.insert(BtbKey::Jte { bid: 0, opcode: 2 }, 0x200);
        assert_eq!(out, InsertOutcome::Inserted { evicted: None, remote_jte_evicted: true });
        assert_eq!(b.resident_jtes(), 1);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 2 }), Some(0x200));
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), None);
        assert_eq!(b.stats.jte_cap_skips, 0);
        assert_eq!(b.stats.jte_evictions, 1);
        assert_eq!(b.stats.jte_inserts, 2);
        b.assert_population_invariant();
    }

    #[test]
    fn zero_cap_drops_every_jte() {
        let mut cfg = BtbConfig::set_assoc(8, 2, Replacement::Lru);
        cfg.jte_cap = Some(0);
        let mut b = Btb::new(cfg);
        assert_eq!(b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 1), InsertOutcome::CapSkipped);
        assert_eq!(b.resident_jtes(), 0);
        assert_eq!(b.stats.jte_cap_skips, 1);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), None);
        b.assert_population_invariant();
    }

    #[test]
    fn flush_jtes_spares_btb_entries() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Pc(0x1000), 1);
        b.insert(BtbKey::Jte { bid: 0, opcode: 7 }, 2);
        assert_eq!(b.flush_jtes(), 1);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 7 }), None);
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(1));
        assert_eq!(b.resident_jtes(), 0);
        assert_eq!(b.stats.jte_flushes, 1);
        assert_eq!(b.stats.jte_flushed, 1);
        b.assert_population_invariant();
    }

    #[test]
    fn fully_assoc_lru() {
        let mut b = Btb::new(BtbConfig::fully_assoc(2, Replacement::Lru));
        b.insert(BtbKey::Pc(0x1000), 1);
        b.insert(BtbKey::Pc(0x2000), 2);
        let _ = b.lookup(BtbKey::Pc(0x1000)); // refresh
        b.insert(BtbKey::Pc(0x3000), 3); // evicts 0x2000
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(1));
        assert_eq!(b.lookup(BtbKey::Pc(0x2000)), None);
        assert_eq!(b.lookup(BtbKey::Pc(0x3000)), Some(3));
    }

    #[test]
    fn round_robin_respects_jte_priority() {
        let mut b = Btb::new(BtbConfig::set_assoc(2, 2, Replacement::RoundRobin));
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 1);
        b.insert(BtbKey::Pc(0x1000), 2);
        // RR pointer may point at the JTE way, but a B insert must skip it.
        b.insert(BtbKey::Pc(0x2000), 3);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), Some(1));
    }

    #[test]
    fn snapshot_reports_valid_entries() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Pc(0x1000), 0x2000);
        b.insert(BtbKey::Jte { bid: 0, opcode: 5 }, 0x3000);
        let snap = b.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().any(|&(k, _, t)| k == EntryKind::Jte && t == 0x3000));
        assert!(snap.iter().any(|&(k, _, t)| k == EntryKind::Pc && t == 0x2000));
    }

    #[test]
    fn vbbi_keys_are_separate() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Vbbi(0x123), 7);
        assert_eq!(b.lookup(BtbKey::Vbbi(0x123)), Some(7));
        // Raw key bits collide with Pc(0x123 << 2), but the kind tag
        // keeps the spaces isolated: a VBBI entry must never satisfy a
        // plain PC lookup (it would corrupt direct-branch prediction).
        assert_eq!(b.lookup(BtbKey::Pc(0x123 << 2)), None);
        // And vice versa: a PC entry never satisfies a VBBI lookup.
        b.insert(BtbKey::Pc(0x777 << 2), 9);
        assert_eq!(b.lookup(BtbKey::Vbbi(0x777)), None);
    }

    #[test]
    fn population_invariant_over_mixed_workout() {
        let mut cfg = BtbConfig::set_assoc(16, 2, Replacement::RoundRobin);
        cfg.jte_cap = Some(3);
        let mut b = Btb::new(cfg);
        for i in 0..200u64 {
            match i % 5 {
                0 | 1 => {
                    b.insert(BtbKey::Jte { bid: (i % 2) as u8, opcode: i % 23 }, i);
                }
                2 => {
                    b.insert(BtbKey::Pc(4 * (i % 64)), i);
                }
                3 => {
                    b.insert(BtbKey::Vbbi(i % 41), i);
                }
                _ => {
                    if i % 60 == 4 {
                        b.flush_jtes();
                    } else {
                        let _ = b.lookup(BtbKey::Jte { bid: 0, opcode: i % 23 });
                    }
                }
            }
            assert!(b.resident_jtes() <= 3);
            b.assert_population_invariant();
        }
    }

    #[test]
    fn fault_hooks_keep_population_identity() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 0x10);
        b.insert(BtbKey::Jte { bid: 0, opcode: 2 }, 0x20);
        b.insert(BtbKey::Pc(0x1000), 0x30);
        assert_eq!(b.fault_invalidate_jte(7), 1);
        assert_eq!(b.resident_jtes(), 1);
        assert_eq!(b.stats.jte_evictions, 1);
        b.assert_population_invariant();
        assert_eq!(b.fault_flush_all(), 1);
        assert_eq!(b.resident_jtes(), 0);
        assert_eq!(b.stats.jte_evictions, 2);
        assert!(b.snapshot().is_empty());
        b.assert_population_invariant();
        // Nothing left: both hooks are no-ops now.
        assert_eq!(b.fault_invalidate_jte(3), 0);
        b.fault_flip_bit(99);
        b.assert_population_invariant();
    }

    #[test]
    fn fault_bit_flip_never_touches_jtes() {
        let mut b = btb(2, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 5 }, 0xAAAA);
        b.insert(BtbKey::Pc(0x1000), 0x2000);
        for r in 0..64u64 {
            b.fault_flip_bit(r.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        // The JTE is untouched; the Pc entry may have any key/target but
        // is still tagged Pc.
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 5 }), Some(0xAAAA));
        assert_eq!(b.resident_jtes(), 1);
        b.assert_population_invariant();
    }

    #[test]
    fn snapshot_words_roundtrip() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 0x10);
        b.insert(BtbKey::Pc(0x1000), 0x30);
        b.insert(BtbKey::Vbbi(0x55), 0x40);
        b.flush_jtes();
        let mut w = Vec::new();
        b.snapshot_words(&mut w);
        let mut b2 = btb(8, 2);
        let mut c = crate::snapshot::Cursor::new(&w);
        b2.restore_words(&mut c).expect("roundtrip restore succeeds");
        assert_eq!(c.remaining(), 0);
        assert_eq!(b2.stats, b.stats);
        assert_eq!(b2.resident_jtes(), b.resident_jtes());
        assert_eq!(b2.snapshot(), b.snapshot());
        assert_eq!(b2.lookup(BtbKey::Pc(0x1000)), Some(0x30));
        b2.assert_population_invariant();
    }

    // ---- two-level organization ----

    /// Tiny two-level geometry for deterministic tests: 2-set × 2-way
    /// L0, 4-set × 2-way L1, 4-bit fold (identity for raws < 16).
    fn tl_btb() -> Btb {
        let tl = TwoLevelBtbConfig {
            l0_entries: 4,
            l0_ways: 2,
            l1_entries: 8,
            l1_ways: 2,
            fold_bits: 4,
            tag_bits: 8,
            l1_bubbles: 2,
        };
        Btb::new(BtbConfig::two_level(tl, Replacement::Lru))
    }

    #[test]
    fn xor_fold_xors_chunks() {
        assert_eq!(xor_fold(0, 8), 0);
        assert_eq!(xor_fold(0xAB, 8), 0xAB);
        assert_eq!(xor_fold(0x12_34, 8), 0x12 ^ 0x34);
        assert_eq!(xor_fold((3u64 << 56) | 7, 8), 3 ^ 7);
        assert_eq!(xor_fold(0b1_0110, 4), 0b0110 ^ 1);
    }

    #[test]
    fn two_level_demotes_then_promotes() {
        let mut b = tl_btb();
        assert_eq!(b.l1_hit_bubbles(), 2);
        // Fill L0 set 0 with a Pc and a Jte, then push a second Pc in:
        // the old Pc demotes to L1 (its own hashed set).
        b.insert(BtbKey::Pc(0), 0xA0); // raw 0 -> L0 set 0
        b.insert(BtbKey::Jte { bid: 0, opcode: 2 }, 0xB0); // raw 2 -> set 0
        let out = b.insert(BtbKey::Pc(2 << 2), 0xA2); // raw 2 -> set 0
        assert_eq!(out, InsertOutcome::Inserted { evicted: None, remote_jte_evicted: false });
        assert_eq!(b.two_level_stats().unwrap().demotions, 1);
        // The demoted entry answers from L1, flagged as such.
        assert_eq!(b.lookup_leveled(BtbKey::Pc(0)), Some((0xA0, true)));
        // L0 set 0 is full, so the hit did not promote.
        assert_eq!(b.two_level_stats().unwrap().promotions, 0);
        // Flushing the JTE frees a way; the next L1 hit promotes.
        b.flush_jtes();
        assert_eq!(b.lookup_leveled(BtbKey::Pc(0)), Some((0xA0, true)));
        assert_eq!(b.two_level_stats().unwrap().promotions, 1);
        assert_eq!(b.lookup_leveled(BtbKey::Pc(0)), Some((0xA0, false)));
        // Exclusive hierarchy: the promoted entry left L1.
        let (l0, l1) = b.snapshot_levels();
        assert!(l0.iter().any(|&(k, r, _)| k == EntryKind::Pc && r == 0));
        assert!(l1.iter().all(|&(k, r, _)| !(k == EntryKind::Pc && r == 0)));
        b.assert_population_invariant();
    }

    #[test]
    fn two_level_partial_tags_alias_pc_but_not_jte() {
        let mut b = tl_btb();
        // Raws 0x004 and 0x400 collide: fold-4 index 4 for both
        // (0x400's nibbles 4,0,0 XOR to 4) and fold-8 tag 4 for both
        // (0x400's bytes 0x04,0x00 XOR to 4).
        let a = 0x004u64;
        let c = 0x400u64;
        let tl = match b.config().org {
            BtbOrg::TwoLevel(tl) => tl,
            BtbOrg::Ideal => unreachable!(),
        };
        assert!(tl.aliases(EntryKind::Pc, a, c), "test keys must collide under the hash");
        assert!(!tl.aliases(EntryKind::Jte, a, c), "JTE tags are full keys");
        b.insert(BtbKey::Pc(a << 2), 0xAAAA);
        // The aliased Pc lookup hits the other key's entry: verified
        // predictions may alias (cycles, not correctness).
        assert_eq!(b.lookup(BtbKey::Pc(c << 2)), Some(0xAAAA));
        // JTEs store the full key: no alias, ever.
        b.insert(BtbKey::Jte { bid: 0, opcode: a }, 0xBBBB);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: c }), None);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: a }), Some(0xBBBB));
        b.assert_population_invariant();
    }

    #[test]
    fn two_level_at_cap_displaces_jte_across_banks() {
        let tl = TwoLevelBtbConfig {
            l0_entries: 4,
            l0_ways: 2,
            l1_entries: 8,
            l1_ways: 2,
            fold_bits: 4,
            tag_bits: 8,
            l1_bubbles: 2,
        };
        let mut cfg = BtbConfig::two_level(tl, Replacement::Lru);
        cfg.jte_cap = Some(3);
        let mut b = Btb::new(cfg);
        // Three JTEs in L0 set 0; the third displaces the oldest into
        // L1 (a demotion, not an eviction: all three stay resident).
        b.insert(BtbKey::Jte { bid: 0, opcode: 2 }, 0x20);
        b.insert(BtbKey::Jte { bid: 0, opcode: 4 }, 0x40);
        b.insert(BtbKey::Jte { bid: 0, opcode: 6 }, 0x60);
        assert_eq!(b.resident_jtes(), 3);
        let (_, l1) = b.snapshot_levels();
        assert!(l1.iter().any(|&(k, _, _)| k == EntryKind::Jte), "oldest JTE demoted to L1");
        // A fourth JTE into the *other* L0 set is at cap with no JTE
        // in its own set: the global-LRU rule must find the demoted
        // victim down in L1 and displace it there.
        let out = b.insert(BtbKey::Jte { bid: 0, opcode: 3 }, 0x30);
        assert_eq!(out, InsertOutcome::Inserted { evicted: None, remote_jte_evicted: true });
        assert_eq!(b.resident_jtes(), 3);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 2 }), None, "global LRU was in L1");
        assert_eq!(b.stats.jte_evictions, 1);
        b.assert_population_invariant();
    }

    #[test]
    fn two_level_demotion_blocked_by_jte_drops_victim() {
        // Fully-associative single-set L0 so a Pc victim's demotion
        // target set can be packed with JTEs first.
        let tl = TwoLevelBtbConfig {
            l0_entries: 2,
            l0_ways: 0,
            l1_entries: 8,
            l1_ways: 2,
            fold_bits: 4,
            tag_bits: 8,
            l1_bubbles: 2,
        };
        let mut b = Btb::new(BtbConfig::two_level(tl, Replacement::Lru));
        // Opcodes 4, 8, 68 (=0x44), 132 (=0x84) all fold to L1 set 0.
        b.insert(BtbKey::Jte { bid: 0, opcode: 4 }, 1);
        b.insert(BtbKey::Jte { bid: 0, opcode: 8 }, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 68 }, 3); // demotes op 4
        b.insert(BtbKey::Jte { bid: 0, opcode: 132 }, 4); // demotes op 8
        let (_, l1) = b.snapshot_levels();
        assert_eq!(l1.len(), 2, "L1 set 0 packed with two JTEs");
        // Free one L0 way so a Pc can get in at all.
        assert_eq!(b.fault_invalidate_jte(0), 1);
        b.insert(BtbKey::Pc(4 << 2), 0xA4); // raw 4 -> L1 set 0 on demotion
        // Pushing a second Pc evicts the first, whose demotion set is
        // all-JTE: the victim is dropped and counted.
        let out = b.insert(BtbKey::Pc(68 << 2), 0xA68);
        assert_eq!(
            out,
            InsertOutcome::Inserted { evicted: Some(EntryKind::Pc), remote_jte_evicted: false }
        );
        assert_eq!(b.two_level_stats().unwrap().demotion_drops, 1);
        assert_eq!(b.lookup(BtbKey::Pc(4 << 2)), None, "dropped victim must not hit");
        assert_eq!(b.lookup(BtbKey::Pc(68 << 2)), Some(0xA68));
        b.assert_population_invariant();
    }

    #[test]
    fn two_level_snapshot_words_roundtrip() {
        let mut b = tl_btb();
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 0x10);
        b.insert(BtbKey::Pc(0), 0x30);
        b.insert(BtbKey::Pc(2 << 2), 0x32);
        b.insert(BtbKey::Pc(4 << 2), 0x34); // forces a demotion
        b.insert(BtbKey::Vbbi(0x55), 0x40);
        let _ = b.lookup_leveled(BtbKey::Pc(0));
        let mut w = Vec::new();
        b.snapshot_words(&mut w);
        let mut b2 = tl_btb();
        let mut c = crate::snapshot::Cursor::new(&w);
        b2.restore_words(&mut c).expect("roundtrip restore succeeds");
        assert_eq!(c.remaining(), 0);
        assert_eq!(b2.stats, b.stats);
        assert_eq!(b2.two_level_stats(), b.two_level_stats());
        assert_eq!(b2.resident_jtes(), b.resident_jtes());
        assert_eq!(b2.snapshot_levels(), b.snapshot_levels());
        b2.assert_population_invariant();
        // An Ideal snapshot cannot restore into a two-level BTB.
        let mut w2 = Vec::new();
        btb(8, 2).snapshot_words(&mut w2);
        let mut c2 = crate::snapshot::Cursor::new(&w2);
        assert!(tl_btb().restore_words(&mut c2).is_err());
    }
}
