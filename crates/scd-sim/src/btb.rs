//! Branch target buffer with the SCD jump-table-entry (JTE) overlay.
//!
//! Each entry carries a J/B flag (Section III-B of the paper): `B` entries
//! are conventional PC-indexed target predictions, `J` entries cache
//! software jump-table entries keyed by `(branch id, opcode)`. The
//! replacement policy implements the paper's default: an incoming JTE may
//! evict a BTB entry but a BTB entry can never evict a JTE, and an
//! optional cap bounds the number of resident JTEs (Section IV /
//! Fig. 11c-d).

use crate::cache::Replacement;

/// BTB geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total number of entries.
    pub entries: usize,
    /// Associativity; `0` means fully associative.
    pub ways: usize,
    /// Replacement policy within a set.
    pub replacement: Replacement,
    /// Maximum number of resident JTEs (`None` = unbounded).
    pub jte_cap: Option<usize>,
}

impl BtbConfig {
    /// Set-associative BTB (paper simulator config: 256 entries, 2-way,
    /// round-robin).
    pub fn set_assoc(entries: usize, ways: usize, replacement: Replacement) -> Self {
        BtbConfig { entries, ways, replacement, jte_cap: None }
    }

    /// Fully-associative BTB (paper FPGA config: 62 entries, LRU).
    pub fn fully_assoc(entries: usize, replacement: Replacement) -> Self {
        BtbConfig { entries, ways: 0, replacement, jte_cap: None }
    }

    fn effective_ways(&self) -> usize {
        if self.ways == 0 {
            self.entries
        } else {
            self.ways
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    /// J/B flag: true = jump table entry.
    jte: bool,
    key: u64,
    target: u64,
    lru: u64,
}

/// Counters for BTB/JTE interaction, surfaced into `SimStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// JTE insertions performed.
    pub jte_inserts: u64,
    /// JTE insertions skipped because of the JTE cap.
    pub jte_cap_skips: u64,
    /// Valid B entries evicted by an incoming JTE.
    pub btb_evicted_by_jte: u64,
    /// B-entry insertions skipped because every way held a JTE.
    pub btb_blocked_by_jte: u64,
    /// `jte.flush` invocations.
    pub jte_flushes: u64,
}

/// The branch target buffer.
#[derive(Debug)]
pub struct Btb {
    cfg: BtbConfig,
    sets: usize,
    ways: usize,
    entries: Vec<Entry>,
    rr_next: Vec<usize>,
    tick: u64,
    jte_count: usize,
    /// Interaction counters.
    pub stats: BtbStats,
}

/// Key space separator so PC keys, JTE keys and VBBI keys never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtbKey {
    /// Conventional PC-indexed entry.
    Pc(u64),
    /// SCD jump table entry: (branch id, opcode).
    Jte {
        /// Branch ID (Section IV, multiple jump tables).
        bid: u8,
        /// The masked opcode value from Rop.
        opcode: u64,
    },
    /// VBBI entry: hash of (PC, hint value).
    Vbbi(u64),
}

impl BtbKey {
    fn raw(self) -> (u64, bool) {
        match self {
            // PCs are 4-byte aligned; drop the known-zero bits for indexing.
            BtbKey::Pc(pc) => (pc >> 2, false),
            BtbKey::Jte { bid, opcode } => (opcode ^ ((bid as u64) << 56), true),
            BtbKey::Vbbi(h) => (h, false),
        }
    }
}

impl Btb {
    /// Builds a BTB from its configuration.
    ///
    /// # Panics
    /// Panics if `entries` is not divisible into power-of-two sets.
    pub fn new(cfg: BtbConfig) -> Self {
        let ways = cfg.effective_ways();
        assert!(ways > 0 && cfg.entries > 0, "BTB must be non-empty");
        assert_eq!(cfg.entries % ways, 0, "entries must divide into ways");
        let sets = cfg.entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Btb {
            cfg,
            sets,
            ways,
            entries: vec![Entry::default(); cfg.entries],
            rr_next: vec![0; sets],
            tick: 0,
            jte_count: 0,
            stats: BtbStats::default(),
        }
    }

    /// The configuration this BTB was built with.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    /// Number of currently resident JTEs.
    pub fn resident_jtes(&self) -> usize {
        self.jte_count
    }

    #[inline]
    fn set_of(&self, raw: u64) -> usize {
        (raw as usize) & (self.sets - 1)
    }

    /// Looks up a key; returns the cached target on hit and refreshes LRU.
    #[inline]
    pub fn lookup(&mut self, key: BtbKey) -> Option<u64> {
        self.tick += 1;
        let (raw, want_jte) = key.raw();
        let set = self.set_of(raw);
        let base = set * self.ways;
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.jte == want_jte && e.key == raw {
                e.lru = self.tick;
                return Some(e.target);
            }
        }
        None
    }

    /// Inserts or updates an entry for `key`.
    pub fn insert(&mut self, key: BtbKey, target: u64) {
        self.tick += 1;
        let (raw, is_jte) = key.raw();
        let set = self.set_of(raw);
        let base = set * self.ways;

        // Update in place on tag match.
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.jte == is_jte && e.key == raw {
                e.target = target;
                e.lru = self.tick;
                return;
            }
        }

        let at_cap = is_jte
            && self
                .cfg
                .jte_cap
                .is_some_and(|cap| self.jte_count >= cap);

        // Choose a victim way subject to the priority rules.
        let allowed = |e: &Entry| -> bool {
            if !e.valid {
                // An invalid way is always usable, except that a JTE at cap
                // must replace another JTE to keep the population bounded.
                return !at_cap;
            }
            if is_jte {
                if at_cap {
                    e.jte
                } else {
                    true // JTE priority: may evict anything
                }
            } else {
                !e.jte // B entries never evict JTEs
            }
        };

        let ways = &self.entries[base..base + self.ways];
        let victim = match self.cfg.replacement {
            Replacement::Lru => {
                let mut best: Option<(usize, u64)> = None;
                for (i, e) in ways.iter().enumerate() {
                    if !allowed(e) {
                        continue;
                    }
                    let score = if e.valid { e.lru } else { 0 };
                    if best.is_none_or(|(_, b)| score < b) {
                        best = Some((i, score));
                    }
                }
                best.map(|(i, _)| i)
            }
            Replacement::RoundRobin => {
                let start = self.rr_next[set];
                let mut found = None;
                for k in 0..self.ways {
                    let i = (start + k) % self.ways;
                    if allowed(&ways[i]) {
                        found = Some(i);
                        self.rr_next[set] = (i + 1) % self.ways;
                        break;
                    }
                }
                found
            }
        };

        let Some(victim) = victim else {
            if is_jte {
                self.stats.jte_cap_skips += 1;
            } else {
                self.stats.btb_blocked_by_jte += 1;
            }
            return;
        };

        let old = self.entries[base + victim];
        if old.valid {
            if old.jte {
                self.jte_count -= 1;
            } else if is_jte {
                self.stats.btb_evicted_by_jte += 1;
            }
        }
        if is_jte {
            self.jte_count += 1;
            self.stats.jte_inserts += 1;
        }
        self.entries[base + victim] =
            Entry { valid: true, jte: is_jte, key: raw, target, lru: self.tick };
    }

    /// A snapshot of the valid entries: `(is_jte, key, target)`, in
    /// array order. For diagnostics and the Fig. 6 walk-through.
    pub fn snapshot(&self) -> Vec<(bool, u64, u64)> {
        self.entries
            .iter()
            .filter(|e| e.valid)
            .map(|e| (e.jte, e.key, e.target))
            .collect()
    }

    /// `jte.flush`: invalidates every JTE but leaves B entries intact.
    pub fn flush_jtes(&mut self) {
        for e in &mut self.entries {
            if e.valid && e.jte {
                e.valid = false;
            }
        }
        self.jte_count = 0;
        self.stats.jte_flushes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb(entries: usize, ways: usize) -> Btb {
        Btb::new(BtbConfig::set_assoc(entries, ways, Replacement::Lru))
    }

    #[test]
    fn pc_lookup_roundtrip() {
        let mut b = btb(8, 2);
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), None);
        b.insert(BtbKey::Pc(0x1000), 0x2000);
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(0x2000));
        b.insert(BtbKey::Pc(0x1000), 0x3000); // update in place
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(0x3000));
    }

    #[test]
    fn jte_and_pc_do_not_alias() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 5 }, 0xAAAA);
        // A PC whose raw key equals the JTE's raw key must not hit it.
        assert_eq!(b.lookup(BtbKey::Pc(5 << 2)), None);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 5 }), Some(0xAAAA));
        // Different branch id: different entry.
        assert_eq!(b.lookup(BtbKey::Jte { bid: 1, opcode: 5 }), None);
    }

    #[test]
    fn jte_evicts_btb_but_not_vice_versa() {
        // One set of 2 ways.
        let mut b = btb(2, 2);
        b.insert(BtbKey::Pc(0x1000), 1);
        b.insert(BtbKey::Pc(0x2000), 2);
        // JTE insertion must evict one of the B entries.
        b.insert(BtbKey::Jte { bid: 0, opcode: 9 }, 3);
        assert_eq!(b.resident_jtes(), 1);
        assert_eq!(b.stats.btb_evicted_by_jte, 1);
        // Fill the other way with a JTE too.
        b.insert(BtbKey::Jte { bid: 0, opcode: 10 }, 4);
        assert_eq!(b.resident_jtes(), 2);
        // Now a B entry cannot get in.
        b.insert(BtbKey::Pc(0x3000), 5);
        assert_eq!(b.lookup(BtbKey::Pc(0x3000)), None);
        assert_eq!(b.stats.btb_blocked_by_jte, 1);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 9 }), Some(3));
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 10 }), Some(4));
    }

    #[test]
    fn jte_cap_enforced() {
        let mut cfg = BtbConfig::fully_assoc(8, Replacement::Lru);
        cfg.jte_cap = Some(2);
        let mut b = Btb::new(cfg);
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 1);
        b.insert(BtbKey::Jte { bid: 0, opcode: 2 }, 2);
        assert_eq!(b.resident_jtes(), 2);
        // Third JTE replaces an existing one (LRU: opcode 1), keeping count at cap.
        b.insert(BtbKey::Jte { bid: 0, opcode: 3 }, 3);
        assert_eq!(b.resident_jtes(), 2);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 3 }), Some(3));
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), None);
    }

    #[test]
    fn flush_jtes_spares_btb_entries() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Pc(0x1000), 1);
        b.insert(BtbKey::Jte { bid: 0, opcode: 7 }, 2);
        b.flush_jtes();
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 7 }), None);
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(1));
        assert_eq!(b.resident_jtes(), 0);
        assert_eq!(b.stats.jte_flushes, 1);
    }

    #[test]
    fn fully_assoc_lru() {
        let mut b = Btb::new(BtbConfig::fully_assoc(2, Replacement::Lru));
        b.insert(BtbKey::Pc(0x1000), 1);
        b.insert(BtbKey::Pc(0x2000), 2);
        let _ = b.lookup(BtbKey::Pc(0x1000)); // refresh
        b.insert(BtbKey::Pc(0x3000), 3); // evicts 0x2000
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(1));
        assert_eq!(b.lookup(BtbKey::Pc(0x2000)), None);
        assert_eq!(b.lookup(BtbKey::Pc(0x3000)), Some(3));
    }

    #[test]
    fn round_robin_respects_jte_priority() {
        let mut b = Btb::new(BtbConfig::set_assoc(2, 2, Replacement::RoundRobin));
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 1);
        b.insert(BtbKey::Pc(0x1000), 2);
        // RR pointer may point at the JTE way, but a B insert must skip it.
        b.insert(BtbKey::Pc(0x2000), 3);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), Some(1));
    }

    #[test]
    fn snapshot_reports_valid_entries() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Pc(0x1000), 0x2000);
        b.insert(BtbKey::Jte { bid: 0, opcode: 5 }, 0x3000);
        let snap = b.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().any(|&(jte, _, t)| jte && t == 0x3000));
        assert!(snap.iter().any(|&(jte, _, t)| !jte && t == 0x2000));
    }

    #[test]
    fn vbbi_keys_are_separate() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Vbbi(0x123), 7);
        assert_eq!(b.lookup(BtbKey::Vbbi(0x123)), Some(7));
        assert_eq!(b.lookup(BtbKey::Pc(0x123 << 2)), Some(7)); // same raw key space as PC
    }
}
