//! Branch *direction* predictors and the return-address stack.
//!
//! Two direction predictors are modeled, matching Table II of the paper:
//! a tournament predictor (512-entry global, 128-entry local, as in the
//! gem5 MinorCPU / Cortex-A5 configuration) and a small gshare (128-entry,
//! as in the Rocket FPGA configuration).

/// Saturating 2-bit counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter2(u8);

impl Counter2 {
    /// Initialized to weakly-taken.
    pub fn weakly_taken() -> Self {
        Counter2(2)
    }

    /// Predicted direction.
    #[inline]
    pub fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Trains the counter toward the observed direction.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Raw counter value, for checkpointing.
    pub(crate) fn raw(self) -> u8 {
        self.0
    }

    /// Rebuilds a counter from a raw value (clamped into 0..=3).
    pub(crate) fn from_raw(v: u8) -> Self {
        Counter2(v.min(3))
    }
}

/// Configuration for a direction predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectionConfig {
    /// Tournament of a GHR-indexed global table and a PC-indexed local
    /// table, with a PC-indexed chooser.
    Tournament {
        /// Entries in the global (and chooser) tables.
        global_entries: usize,
        /// Entries in the local table.
        local_entries: usize,
    },
    /// gshare: one table indexed by PC xor global history.
    Gshare {
        /// Table entries.
        entries: usize,
    },
}

/// A trainable direction predictor.
#[derive(Debug)]
#[allow(missing_docs)] // fields mirror DirectionConfig
pub enum Direction {
    /// Tournament predictor state.
    Tournament { global: Vec<Counter2>, local: Vec<Counter2>, chooser: Vec<Counter2>, ghr: u64 },
    /// gshare predictor state.
    Gshare { table: Vec<Counter2>, ghr: u64 },
}

impl Direction {
    /// Builds a predictor from its configuration.
    ///
    /// # Panics
    /// Panics if a table size is zero or not a power of two.
    pub fn new(cfg: DirectionConfig) -> Self {
        let check = |n: usize| {
            assert!(n > 0 && n.is_power_of_two(), "table size must be a power of two");
            n
        };
        match cfg {
            DirectionConfig::Tournament { global_entries, local_entries } => {
                Direction::Tournament {
                    global: vec![Counter2::weakly_taken(); check(global_entries)],
                    local: vec![Counter2::weakly_taken(); check(local_entries)],
                    chooser: vec![Counter2::weakly_taken(); check(global_entries)],
                    ghr: 0,
                }
            }
            DirectionConfig::Gshare { entries } => {
                Direction::Gshare { table: vec![Counter2::weakly_taken(); check(entries)], ghr: 0 }
            }
        }
    }

    /// Predicts the direction of the conditional branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: u64) -> bool {
        match self {
            Direction::Tournament { global, local, chooser, ghr } => {
                let gi = ((pc >> 2) ^ ghr) as usize & (global.len() - 1);
                let li = (pc >> 2) as usize & (local.len() - 1);
                let ci = (pc >> 2) as usize & (chooser.len() - 1);
                if chooser[ci].taken() {
                    global[gi].taken()
                } else {
                    local[li].taken()
                }
            }
            Direction::Gshare { table, ghr } => {
                let i = ((pc >> 2) ^ ghr) as usize & (table.len() - 1);
                table[i].taken()
            }
        }
    }

    /// Trains the predictor with the resolved outcome.
    #[inline]
    pub fn update(&mut self, pc: u64, taken: bool) {
        match self {
            Direction::Tournament { global, local, chooser, ghr } => {
                let gi = ((pc >> 2) ^ *ghr) as usize & (global.len() - 1);
                let li = (pc >> 2) as usize & (local.len() - 1);
                let ci = (pc >> 2) as usize & (chooser.len() - 1);
                let g_correct = global[gi].taken() == taken;
                let l_correct = local[li].taken() == taken;
                if g_correct != l_correct {
                    chooser[ci].update(g_correct);
                }
                global[gi].update(taken);
                local[li].update(taken);
                *ghr = (*ghr << 1) | taken as u64;
            }
            Direction::Gshare { table, ghr } => {
                let i = ((pc >> 2) ^ *ghr) as usize & (table.len() - 1);
                table[i].update(taken);
                *ghr = (*ghr << 1) | taken as u64;
            }
        }
    }

    /// Fault hook: overwrites every counter and the global history with
    /// pseudo-random garbage. Direction predictions are resolved at
    /// execute, so this is timing-only state.
    pub(crate) fn scramble(&mut self, rng: &mut crate::fault::Rng) {
        let scramble_table = |t: &mut Vec<Counter2>, rng: &mut crate::fault::Rng| {
            for c in t.iter_mut() {
                *c = Counter2::from_raw((rng.next() & 3) as u8);
            }
        };
        match self {
            Direction::Tournament { global, local, chooser, ghr } => {
                scramble_table(global, rng);
                scramble_table(local, rng);
                scramble_table(chooser, rng);
                *ghr = rng.next();
            }
            Direction::Gshare { table, ghr } => {
                scramble_table(table, rng);
                *ghr = rng.next();
            }
        }
    }

    // ---- checkpoint codec (crate::snapshot) ----

    pub(crate) fn snapshot_words(&self, out: &mut Vec<u64>) {
        let push_table = |out: &mut Vec<u64>, t: &[Counter2]| {
            out.push(t.len() as u64);
            out.extend(t.iter().map(|c| c.raw() as u64));
        };
        match self {
            Direction::Tournament { global, local, chooser, ghr } => {
                out.push(0);
                push_table(out, global);
                push_table(out, local);
                push_table(out, chooser);
                out.push(*ghr);
            }
            Direction::Gshare { table, ghr } => {
                out.push(1);
                push_table(out, table);
                out.push(*ghr);
            }
        }
    }

    pub(crate) fn restore_words(
        &mut self,
        c: &mut crate::snapshot::Cursor,
    ) -> Result<(), crate::SnapshotError> {
        let restore_table =
            |t: &mut Vec<Counter2>,
             c: &mut crate::snapshot::Cursor|
             -> Result<(), crate::SnapshotError> {
                let n = c.next()? as usize;
                crate::snapshot::check(n == t.len(), "snapshot predictor table size mismatch")?;
                for slot in t.iter_mut() {
                    *slot = Counter2::from_raw(c.next()? as u8);
                }
                Ok(())
            };
        let tag = c.next()?;
        match self {
            Direction::Tournament { global, local, chooser, ghr } => {
                crate::snapshot::check(tag == 0, "snapshot predictor variant mismatch")?;
                restore_table(global, c)?;
                restore_table(local, c)?;
                restore_table(chooser, c)?;
                *ghr = c.next()?;
            }
            Direction::Gshare { table, ghr } => {
                crate::snapshot::check(tag == 1, "snapshot predictor variant mismatch")?;
                restore_table(table, c)?;
                *ghr = c.next()?;
            }
        }
        Ok(())
    }
}

/// Return-address stack (circular; overflow overwrites the oldest entry,
/// as in real small cores).
#[derive(Debug)]
pub struct Ras {
    stack: Vec<u64>,
    top: usize,
    depth: usize,
}

impl Ras {
    /// Creates a RAS with `entries` slots.
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "RAS needs at least one entry");
        Ras { stack: vec![0; entries], top: 0, depth: 0 }
    }

    /// Pushes a return address (on calls).
    #[inline]
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.stack.len();
        self.stack[self.top] = addr;
        self.depth = (self.depth + 1).min(self.stack.len());
    }

    /// Pops the predicted return address (on returns); `None` when empty.
    #[inline]
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let v = self.stack[self.top];
        self.top = (self.top + self.stack.len() - 1) % self.stack.len();
        self.depth -= 1;
        Some(v)
    }

    /// Fault hook: empties the stack. Return predictions are verified at
    /// execute, so a drained RAS only costs mispredict penalties.
    pub(crate) fn clear(&mut self) {
        self.top = 0;
        self.depth = 0;
    }

    // ---- checkpoint codec (crate::snapshot) ----

    pub(crate) fn snapshot_words(&self, out: &mut Vec<u64>) {
        out.push(self.stack.len() as u64);
        out.extend_from_slice(&self.stack);
        out.push(self.top as u64);
        out.push(self.depth as u64);
    }

    pub(crate) fn restore_words(
        &mut self,
        c: &mut crate::snapshot::Cursor,
    ) -> Result<(), crate::SnapshotError> {
        let n = c.next()? as usize;
        crate::snapshot::check(n == self.stack.len(), "snapshot RAS size mismatch")?;
        for v in &mut self.stack {
            *v = c.next()?;
        }
        self.top = c.next()? as usize;
        self.depth = c.next()? as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter2::default();
        assert!(!c.taken());
        c.update(true);
        c.update(true);
        assert!(c.taken());
        c.update(true);
        c.update(true);
        c.update(false);
        assert!(c.taken()); // 3 -> 2, still taken
        c.update(false);
        assert!(!c.taken());
    }

    #[test]
    fn gshare_learns_always_taken() {
        let mut p = Direction::new(DirectionConfig::Gshare { entries: 128 });
        let pc = 0x1000;
        for _ in 0..8 {
            let pred = p.predict(pc);
            p.update(pc, true);
            let _ = pred;
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn tournament_learns_alternating_via_global() {
        let mut p =
            Direction::new(DirectionConfig::Tournament { global_entries: 512, local_entries: 128 });
        let pc = 0x2000;
        // Alternating pattern: global history should capture it.
        let mut correct = 0;
        let mut total = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            if i >= 100 {
                total += 1;
                if p.predict(pc) == taken {
                    correct += 1;
                }
            }
            p.update(pc, taken);
        }
        assert!(
            correct * 10 >= total * 9,
            "tournament should learn alternation: {correct}/{total}"
        );
    }

    #[test]
    fn ras_lifo() {
        let mut r = Ras::new(4);
        r.push(0x10);
        r.push(0x20);
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), Some(0x10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
