//! Sparse, segment-based guest physical memory.
//!
//! The guest address space is a handful of disjoint segments (text, rodata,
//! image, stacks, heap). Accesses outside any segment or straddling a
//! segment end are reported as faults.

use std::fmt;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting guest address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores.
    pub write: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault at {:#x} ({} bytes)",
            if self.write { "store" } else { "load" },
            self.addr,
            self.size
        )
    }
}

impl std::error::Error for MemFault {}

#[derive(Debug)]
struct Segment {
    name: &'static str,
    base: u64,
    data: Vec<u8>,
}

/// Segmented guest memory.
#[derive(Debug, Default)]
pub struct Memory {
    segments: Vec<Segment>,
    /// Index of the segment the last access resolved to. Guest accesses
    /// are strongly local (the hot interpreter state lives in one or two
    /// segments), so checking it first skips the linear segment scan on
    /// nearly every access. Pure lookup cache: segments are disjoint, so
    /// the resolved segment is independent of probe order.
    last_seg: std::cell::Cell<usize>,
}

impl Memory {
    /// Creates an empty memory with no segments.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Adds a zero-filled segment.
    ///
    /// # Panics
    /// Panics if the new segment overlaps an existing one.
    pub fn add_segment(&mut self, name: &'static str, base: u64, size: u64) {
        for s in &self.segments {
            let s_end = s.base + s.data.len() as u64;
            assert!(
                base + size <= s.base || base >= s_end,
                "segment {name} [{base:#x},{:#x}) overlaps {} [{:#x},{s_end:#x})",
                base + size,
                s.name,
                s.base
            );
        }
        self.segments.push(Segment { name, base, data: vec![0; size as usize] });
    }

    /// Copies `bytes` into memory at `addr` (must be within one segment).
    ///
    /// # Panics
    /// Panics if the destination range is unmapped; loading an image into
    /// unmapped memory is a harness bug, not a guest error.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let seg = self
            .segments
            .iter_mut()
            .find(|s| addr >= s.base && addr + bytes.len() as u64 <= s.base + s.data.len() as u64)
            .unwrap_or_else(|| panic!("write_bytes to unmapped {addr:#x}"));
        let off = (addr - seg.base) as usize;
        seg.data[off..off + bytes.len()].copy_from_slice(bytes);
    }

    #[inline]
    fn locate(&self, addr: u64, size: u64) -> Option<(usize, usize)> {
        let hint = self.last_seg.get();
        if let Some(s) = self.segments.get(hint) {
            if addr >= s.base && addr + size <= s.base + s.data.len() as u64 {
                return Some((hint, (addr - s.base) as usize));
            }
        }
        for (i, s) in self.segments.iter().enumerate() {
            if addr >= s.base && addr + size <= s.base + s.data.len() as u64 {
                self.last_seg.set(i);
                return Some((i, (addr - s.base) as usize));
            }
        }
        None
    }

    /// Reads `SIZE` bytes little-endian.
    #[inline]
    pub fn read<const SIZE: usize>(&self, addr: u64) -> Result<[u8; SIZE], MemFault> {
        let (seg, off) = self.locate(addr, SIZE as u64).ok_or(MemFault {
            addr,
            size: SIZE as u64,
            write: false,
        })?;
        let mut out = [0u8; SIZE];
        out.copy_from_slice(&self.segments[seg].data[off..off + SIZE]);
        Ok(out)
    }

    /// Writes `SIZE` bytes little-endian.
    #[inline]
    pub fn write<const SIZE: usize>(
        &mut self,
        addr: u64,
        bytes: [u8; SIZE],
    ) -> Result<(), MemFault> {
        let (seg, off) = self.locate(addr, SIZE as u64).ok_or(MemFault {
            addr,
            size: SIZE as u64,
            write: true,
        })?;
        self.segments[seg].data[off..off + SIZE].copy_from_slice(&bytes);
        Ok(())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        Ok(self.read::<1>(addr)?[0])
    }
    /// Reads a little-endian u16.
    pub fn read_u16(&self, addr: u64) -> Result<u16, MemFault> {
        Ok(u16::from_le_bytes(self.read::<2>(addr)?))
    }
    /// Reads a little-endian u32.
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemFault> {
        Ok(u32::from_le_bytes(self.read::<4>(addr)?))
    }
    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        Ok(u64::from_le_bytes(self.read::<8>(addr)?))
    }
    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemFault> {
        self.write::<1>(addr, [v])
    }
    /// Writes a little-endian u16.
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), MemFault> {
        self.write::<2>(addr, v.to_le_bytes())
    }
    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemFault> {
        self.write::<4>(addr, v.to_le_bytes())
    }
    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.write::<8>(addr, v.to_le_bytes())
    }

    /// Iterates the mapped segments as `(name, base, data)`, in mapping
    /// order. Used by the fault-injection differential guard to compare
    /// whole memories byte for byte.
    pub fn segments(&self) -> impl Iterator<Item = (&'static str, u64, &[u8])> {
        self.segments.iter().map(|s| (s.name, s.base, s.data.as_slice()))
    }

    // ---- execute-ahead replay (crate::machine::replay) ----

    /// Moves the backing bytes of every segment out (leaving empty
    /// vectors behind), for the replay producer to own during a run.
    /// The machine's memory is unusable until [`Memory::put_back_data`]
    /// restores it — the replay consumer never touches memory (loads
    /// come from the record stream, stores were already applied by the
    /// producer), so nothing observes the gap.
    pub(crate) fn take_all_data(&mut self) -> Vec<(&'static str, u64, Vec<u8>)> {
        self.segments
            .iter_mut()
            .map(|s| (s.name, s.base, std::mem::take(&mut s.data)))
            .collect()
    }

    /// Restores segment data moved out by [`Memory::take_all_data`], in
    /// the same order.
    pub(crate) fn put_back_data(&mut self, data: impl Iterator<Item = Vec<u8>>) {
        let mut n = 0;
        for (s, d) in self.segments.iter_mut().zip(data) {
            debug_assert!(s.data.is_empty(), "segment {} was not taken", s.name);
            s.data = d;
            n += 1;
        }
        assert_eq!(n, self.segments.len(), "replay returned a different segment count");
    }

    // ---- checkpoint codec (crate::snapshot) ----

    pub(crate) fn snapshot_segments(&self) -> Vec<(String, u64, Vec<u8>)> {
        self.segments.iter().map(|s| (s.name.to_string(), s.base, s.data.clone())).collect()
    }

    /// Restores segment contents from a snapshot. The target memory must
    /// have the identical layout (same machine config and program).
    pub(crate) fn restore_segments(
        &mut self,
        segs: &[(String, u64, Vec<u8>)],
    ) -> Result<(), String> {
        if segs.len() != self.segments.len() {
            return Err(format!(
                "snapshot has {} segments, machine has {}",
                segs.len(),
                self.segments.len()
            ));
        }
        for (s, (name, base, data)) in self.segments.iter_mut().zip(segs) {
            if s.name != name || s.base != *base || s.data.len() != data.len() {
                return Err(format!(
                    "segment mismatch: machine {}@{:#x}+{:#x}, snapshot {}@{:#x}+{:#x}",
                    s.name,
                    s.base,
                    s.data.len(),
                    name,
                    base,
                    data.len()
                ));
            }
            s.data.copy_from_slice(data);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_rw() {
        let mut m = Memory::new();
        m.add_segment("a", 0x1000, 0x100);
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u8(0x1000).unwrap(), 0x0d);
        assert_eq!(m.read_u32(0x1004).unwrap(), 0xdead_beef);
    }

    #[test]
    fn faults_outside_segments() {
        let mut m = Memory::new();
        m.add_segment("a", 0x1000, 0x100);
        assert!(m.read_u8(0xfff).is_err());
        assert!(m.read_u64(0x10fc).is_err()); // straddles the end
        assert!(m.write_u8(0x1100, 1).is_err());
        let f = m.read_u32(0x5000).unwrap_err();
        assert_eq!(f.addr, 0x5000);
        assert!(!f.write);
    }

    #[test]
    #[should_panic]
    fn overlap_panics() {
        let mut m = Memory::new();
        m.add_segment("a", 0x1000, 0x100);
        m.add_segment("b", 0x1080, 0x100);
    }

    #[test]
    fn multiple_segments() {
        let mut m = Memory::new();
        m.add_segment("lo", 0x1000, 0x100);
        m.add_segment("hi", 0x8000_0000, 0x100);
        m.write_u32(0x8000_0000, 7).unwrap();
        m.write_u32(0x1000, 9).unwrap();
        assert_eq!(m.read_u32(0x8000_0000).unwrap(), 7);
        assert_eq!(m.read_u32(0x1000).unwrap(), 9);
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = Memory::new();
        m.add_segment("a", 0, 16);
        m.write_bytes(4, &[1, 2, 3, 4]);
        assert_eq!(m.read_u32(4).unwrap(), 0x04030201);
    }
}
