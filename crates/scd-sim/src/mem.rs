//! Sparse, segment-based guest physical memory.
//!
//! The guest address space is a handful of disjoint segments (text, rodata,
//! image, stacks, heap). Accesses outside any segment or straddling a
//! segment end are reported as faults.

use std::fmt;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting guest address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores.
    pub write: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault at {:#x} ({} bytes)",
            if self.write { "store" } else { "load" },
            self.addr,
            self.size
        )
    }
}

impl std::error::Error for MemFault {}

#[derive(Debug)]
struct Segment {
    name: &'static str,
    base: u64,
    data: Vec<u8>,
    /// Bytes-written high-water mark: every write through this memory
    /// raises it, so `data[hw..]` is untouched since mapping — i.e.
    /// still zero. The snapshot codec scans only `data[..hw]` for the
    /// live extent, keeping snapshot cost proportional to *written*
    /// memory: a mostly-untouched 192 MiB heap is neither scanned (which
    /// would soft-fault every page in) nor cloned.
    hw: usize,
}

/// Segmented guest memory.
#[derive(Debug, Default)]
pub struct Memory {
    segments: Vec<Segment>,
    /// Index of the segment the last access resolved to. Guest accesses
    /// are strongly local (the hot interpreter state lives in one or two
    /// segments), so checking it first skips the linear segment scan on
    /// nearly every access. Pure lookup cache: segments are disjoint, so
    /// the resolved segment is independent of probe order.
    last_seg: std::cell::Cell<usize>,
}

impl Memory {
    /// Creates an empty memory with no segments.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Adds a zero-filled segment.
    ///
    /// # Panics
    /// Panics if the new segment overlaps an existing one.
    pub fn add_segment(&mut self, name: &'static str, base: u64, size: u64) {
        for s in &self.segments {
            let s_end = s.base + s.data.len() as u64;
            assert!(
                base + size <= s.base || base >= s_end,
                "segment {name} [{base:#x},{:#x}) overlaps {} [{:#x},{s_end:#x})",
                base + size,
                s.name,
                s.base
            );
        }
        self.segments.push(Segment {
            name,
            base,
            data: vec![0; size as usize],
            hw: 0,
        });
    }

    /// Copies `bytes` into memory at `addr` (must be within one segment).
    ///
    /// # Panics
    /// Panics if the destination range is unmapped; loading an image into
    /// unmapped memory is a harness bug, not a guest error.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let seg = self
            .segments
            .iter_mut()
            .find(|s| addr >= s.base && addr + bytes.len() as u64 <= s.base + s.data.len() as u64)
            .unwrap_or_else(|| panic!("write_bytes to unmapped {addr:#x}"));
        let off = (addr - seg.base) as usize;
        seg.data[off..off + bytes.len()].copy_from_slice(bytes);
        seg.hw = seg.hw.max(off + bytes.len());
    }

    #[inline]
    fn locate(&self, addr: u64, size: u64) -> Option<(usize, usize)> {
        let hint = self.last_seg.get();
        if let Some(s) = self.segments.get(hint) {
            if addr >= s.base && addr + size <= s.base + s.data.len() as u64 {
                return Some((hint, (addr - s.base) as usize));
            }
        }
        for (i, s) in self.segments.iter().enumerate() {
            if addr >= s.base && addr + size <= s.base + s.data.len() as u64 {
                self.last_seg.set(i);
                return Some((i, (addr - s.base) as usize));
            }
        }
        None
    }

    /// Reads `SIZE` bytes little-endian.
    #[inline]
    pub fn read<const SIZE: usize>(&self, addr: u64) -> Result<[u8; SIZE], MemFault> {
        let (seg, off) = self.locate(addr, SIZE as u64).ok_or(MemFault {
            addr,
            size: SIZE as u64,
            write: false,
        })?;
        let mut out = [0u8; SIZE];
        out.copy_from_slice(&self.segments[seg].data[off..off + SIZE]);
        Ok(out)
    }

    /// Writes `SIZE` bytes little-endian.
    #[inline]
    pub fn write<const SIZE: usize>(
        &mut self,
        addr: u64,
        bytes: [u8; SIZE],
    ) -> Result<(), MemFault> {
        let (seg, off) = self.locate(addr, SIZE as u64).ok_or(MemFault {
            addr,
            size: SIZE as u64,
            write: true,
        })?;
        let s = &mut self.segments[seg];
        s.data[off..off + SIZE].copy_from_slice(&bytes);
        if off + SIZE > s.hw {
            s.hw = off + SIZE;
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        Ok(self.read::<1>(addr)?[0])
    }
    /// Reads a little-endian u16.
    pub fn read_u16(&self, addr: u64) -> Result<u16, MemFault> {
        Ok(u16::from_le_bytes(self.read::<2>(addr)?))
    }
    /// Reads a little-endian u32.
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemFault> {
        Ok(u32::from_le_bytes(self.read::<4>(addr)?))
    }
    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        Ok(u64::from_le_bytes(self.read::<8>(addr)?))
    }
    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemFault> {
        self.write::<1>(addr, [v])
    }
    /// Writes a little-endian u16.
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), MemFault> {
        self.write::<2>(addr, v.to_le_bytes())
    }
    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemFault> {
        self.write::<4>(addr, v.to_le_bytes())
    }
    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.write::<8>(addr, v.to_le_bytes())
    }

    /// Iterates the mapped segments as `(name, base, data)`, in mapping
    /// order. Used by the fault-injection differential guard to compare
    /// whole memories byte for byte.
    pub fn segments(&self) -> impl Iterator<Item = (&'static str, u64, &[u8])> {
        self.segments
            .iter()
            .map(|s| (s.name, s.base, s.data.as_slice()))
    }

    // ---- execute-ahead replay (crate::machine::replay) ----

    /// Moves the backing bytes of every segment out (leaving empty
    /// vectors behind), for the replay producer to own during a run.
    /// The machine's memory is unusable until [`Memory::put_back_data`]
    /// restores it — the replay consumer never touches memory (loads
    /// come from the record stream, stores were already applied by the
    /// producer), so nothing observes the gap.
    pub(crate) fn take_all_data(&mut self) -> Vec<(&'static str, u64, Vec<u8>)> {
        self.segments
            .iter_mut()
            .map(|s| (s.name, s.base, std::mem::take(&mut s.data)))
            .collect()
    }

    /// Restores segment data moved out by [`Memory::take_all_data`], in
    /// the same order, merging in each segment's write high-water mark as
    /// observed by the core that owned the memory (see
    /// [`RefCore::seg_high_waters`](scd_ref::RefCore::seg_high_waters)).
    pub(crate) fn put_back_data(&mut self, data: impl Iterator<Item = (Vec<u8>, usize)>) {
        let mut n = 0;
        for (s, (d, hw)) in self.segments.iter_mut().zip(data) {
            debug_assert!(s.data.is_empty(), "segment {} was not taken", s.name);
            s.data = d;
            s.hw = s.hw.max(hw);
            n += 1;
        }
        assert_eq!(
            n,
            self.segments.len(),
            "replay returned a different segment count"
        );
    }

    // ---- checkpoint codec (crate::snapshot) ----

    /// Captures every segment zero-trimmed: (name, base, full size,
    /// bytes up to the last non-zero one). Guests map a ~200 MB mostly
    /// untouched heap; cloning only the live prefix keeps snapshots —
    /// which the sampled-simulation scheduler takes at every run start —
    /// proportional to touched memory, not mapped memory.
    pub(crate) fn snapshot_segments(&self) -> Vec<(String, u64, u64, Vec<u8>)> {
        self.segments
            .iter()
            .map(|s| {
                let live = trimmed_len(&s.data[..s.hw]);
                (
                    s.name.to_string(),
                    s.base,
                    s.data.len() as u64,
                    s.data[..live].to_vec(),
                )
            })
            .collect()
    }

    /// Restores segment contents from a snapshot, zero-filling each
    /// segment's trimmed tail. The target memory must have the identical
    /// layout (same machine config and program).
    pub(crate) fn restore_segments(
        &mut self,
        segs: &[(String, u64, u64, Vec<u8>)],
    ) -> Result<(), String> {
        if segs.len() != self.segments.len() {
            return Err(format!(
                "snapshot has {} segments, machine has {}",
                segs.len(),
                self.segments.len()
            ));
        }
        for (s, (name, base, size, data)) in self.segments.iter_mut().zip(segs) {
            if s.name != name || s.base != *base || s.data.len() as u64 != *size {
                return Err(format!(
                    "segment mismatch: machine {}@{:#x}+{:#x}, snapshot {}@{:#x}+{:#x}",
                    s.name,
                    s.base,
                    s.data.len(),
                    name,
                    base,
                    size
                ));
            }
            // Zero only up to the written extent: everything past it is
            // still zero, and blanket-filling a mostly-untouched 192 MiB
            // heap would materialize every shared zero page. After the
            // restore, writes resume from the snapshot's live prefix.
            s.data[..data.len()].copy_from_slice(data);
            if s.hw > data.len() {
                s.data[data.len()..s.hw].fill(0);
            }
            s.hw = data.len();
        }
        Ok(())
    }
}

/// Length of `data` up to and including its last non-zero byte. Scans
/// backwards in 64-byte strides, OR-reducing eight words per stride so
/// the inner loop vectorizes: untouched pages of a freshly mapped
/// segment are kernel-shared zero pages, so the scan over the common
/// mostly-zero heap runs at cache speed — a fraction of cloning it.
fn trimmed_len(data: &[u8]) -> usize {
    const STRIDE: usize = 64;
    let blocks = data.len() / STRIDE;
    let (body, tail) = data.split_at(blocks * STRIDE);
    if let Some(p) = tail.iter().rposition(|&b| b != 0) {
        return body.len() + p + 1;
    }
    for b in (0..blocks).rev() {
        let chunk = &body[b * STRIDE..(b + 1) * STRIDE];
        let mut or = 0u64;
        for w in chunk.chunks_exact(8) {
            or |= u64::from_le_bytes(w.try_into().expect("8-byte word"));
        }
        if or != 0 {
            let last = chunk.iter().rposition(|&x| x != 0).expect("non-zero block");
            return b * STRIDE + last + 1;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_rw() {
        let mut m = Memory::new();
        m.add_segment("a", 0x1000, 0x100);
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u8(0x1000).unwrap(), 0x0d);
        assert_eq!(m.read_u32(0x1004).unwrap(), 0xdead_beef);
    }

    #[test]
    fn faults_outside_segments() {
        let mut m = Memory::new();
        m.add_segment("a", 0x1000, 0x100);
        assert!(m.read_u8(0xfff).is_err());
        assert!(m.read_u64(0x10fc).is_err()); // straddles the end
        assert!(m.write_u8(0x1100, 1).is_err());
        let f = m.read_u32(0x5000).unwrap_err();
        assert_eq!(f.addr, 0x5000);
        assert!(!f.write);
    }

    #[test]
    #[should_panic]
    fn overlap_panics() {
        let mut m = Memory::new();
        m.add_segment("a", 0x1000, 0x100);
        m.add_segment("b", 0x1080, 0x100);
    }

    #[test]
    fn multiple_segments() {
        let mut m = Memory::new();
        m.add_segment("lo", 0x1000, 0x100);
        m.add_segment("hi", 0x8000_0000, 0x100);
        m.write_u32(0x8000_0000, 7).unwrap();
        m.write_u32(0x1000, 9).unwrap();
        assert_eq!(m.read_u32(0x8000_0000).unwrap(), 7);
        assert_eq!(m.read_u32(0x1000).unwrap(), 9);
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = Memory::new();
        m.add_segment("a", 0, 16);
        m.write_bytes(4, &[1, 2, 3, 4]);
        assert_eq!(m.read_u32(4).unwrap(), 0x04030201);
    }

    #[test]
    fn trimmed_len_finds_the_last_nonzero_byte() {
        assert_eq!(trimmed_len(&[]), 0);
        assert_eq!(trimmed_len(&[0; 64]), 0);
        assert_eq!(trimmed_len(&[1]), 1);
        let mut d = vec![0u8; 100];
        d[0] = 5;
        assert_eq!(trimmed_len(&d), 1);
        d[41] = 7; // mid-word, word-aligned scan must find the byte
        assert_eq!(trimmed_len(&d), 42);
        d[97] = 1; // in the sub-word tail
        assert_eq!(trimmed_len(&d), 98);
    }

    #[test]
    fn snapshot_segments_trim_and_restore_refills_tails() {
        let mut m = Memory::new();
        m.add_segment("a", 0x1000, 0x100);
        m.write_u32(0x1004, 0xdead_beef).unwrap();
        let snap = m.snapshot_segments();
        assert_eq!(snap[0].2, 0x100, "full size recorded");
        assert_eq!(snap[0].3.len(), 8, "data trimmed to the live prefix");
        // Dirty a byte past the trim point, then restore: the tail must
        // come back zero, not keep the dirt.
        m.write_u8(0x10f0, 0xaa).unwrap();
        m.restore_segments(&snap).unwrap();
        assert_eq!(m.read_u8(0x10f0).unwrap(), 0);
        assert_eq!(m.read_u32(0x1004).unwrap(), 0xdead_beef);
    }
}
