//! Shared divergence-report plumbing.
//!
//! Both differential guards — fault injection (`scd-guest`) and lockstep
//! co-simulation ([`crate::lockstep`]) — end the same way on failure: a
//! bounded window of retirement-trace events is dumped to a JSONL file so
//! the failure can be replayed and minimized offline. This module owns
//! that tail so the two guards render findings identically.

use crate::machine::Machine;
use crate::trace::{downcast_sink, RingSink, TraceEvent};
use std::path::PathBuf;

/// Writes the ring window to `scd-divergence-<tag>.jsonl` in the system
/// temp directory; returns `None` when the buffer is empty or the write
/// fails (a guard's verdict never depends on the dump succeeding).
pub fn dump_window(tag: &str, ring: &RingSink) -> Option<PathBuf> {
    if ring.is_empty() {
        return None;
    }
    let path = std::env::temp_dir().join(format!("scd-divergence-{tag}.jsonl"));
    std::fs::write(&path, ring.to_jsonl()).ok()?;
    Some(path)
}

/// Takes a [`RingSink`] back out of a machine (the machine owns its sink;
/// the window is recovered, not shared) and dumps it via [`dump_window`].
pub fn take_and_dump(tag: &str, machine: &mut Machine) -> Option<PathBuf> {
    let ring = machine.take_trace_sink().and_then(downcast_sink::<RingSink>)?;
    dump_window(tag, &ring)
}

/// Renders one retirement event as a single human-readable line for
/// divergence details (`seq`, `pc`, class, and the architectural record
/// when present).
pub fn describe_event(ev: &TraceEvent) -> String {
    let mut s = format!("seq {} pc {:#x} [{:?}]", ev.seq, ev.pc, ev.class);
    if let Some(a) = ev.arch {
        s.push_str(&format!(" -> {:#x}", a.next_pc));
        if let Some((r, v)) = a.wx {
            s.push_str(&format!(" x{r}={v:#x}"));
        }
        if let Some((r, v)) = a.wf {
            s.push_str(&format!(" f{r}={v:#x}"));
        }
        if let Some(ea) = a.ea {
            s.push_str(&format!(" ea={ea:#x}"));
        }
        if let Some(st) = a.store {
            s.push_str(&format!(" store={st:#x}"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ArchInfo, FetchAccess, InstClass, Inserts};

    fn ev() -> TraceEvent {
        TraceEvent {
            seq: 3,
            pc: 0x1_0000,
            class: InstClass::Alu,
            cycle: 10,
            cycles: 1,
            dispatch: false,
            fetch: FetchAccess::default(),
            data: None,
            branch: None,
            redirect: None,
            bop: None,
            inserts: Inserts::default(),
            flush: None,
            fault: None,
            arch: Some(ArchInfo {
                wx: Some((5, 0xAB)),
                wf: None,
                ea: Some(0x2_0000),
                store: None,
                next_pc: 0x1_0004,
            }),
        }
    }

    #[test]
    fn describe_mentions_the_arch_record() {
        let s = describe_event(&ev());
        assert!(s.contains("pc 0x10000"), "{s}");
        assert!(s.contains("x5=0xab"), "{s}");
        assert!(s.contains("ea=0x20000"), "{s}");
    }

    #[test]
    fn empty_ring_dumps_nothing() {
        assert!(dump_window("report-test-empty", &RingSink::new(8)).is_none());
    }
}
