//! Deterministic µarch fault injection: the adversarial harness for the
//! paper's hint-not-oracle safety claim.
//!
//! SCD overlays jump table entries on the BTB as *prediction hints*: a
//! stale, evicted or corrupted JTE may cost cycles but must never change
//! what the interpreter computes. A [`FaultPlan`] makes that claim
//! testable by injecting seeded, reproducible microarchitectural faults
//! mid-run — JTE corruption (modeled as detected-parity invalidation),
//! whole-BTB flush storms, bit flips in verified-prediction entries,
//! cache/TLB invalidation and predictor-state scrambling. Every
//! injection is logged on the retiring instruction's [`crate::TraceEvent`]
//! with its JTE population delta, so [`crate::StatInvariants`] keeps
//! balancing during a faulted run.
//!
//! [`diff_architectural`] is the differential guard's comparator: after
//! running the same guest with and without a plan, it must report no
//! difference in registers, memory or guest output — only the timing
//! statistics may diverge.

use crate::machine::Machine;

/// The fault classes a [`FaultPlan`] can inject.
///
/// Every kind is *architecturally safe by construction*: it only touches
/// state the pipeline verifies at execute (PC/VBBI predictions, the
/// direction predictor, ITTAGE, the RAS) or state whose loss is always
/// tolerated (JTEs, whose absence routes `bop` to the slow path; cache
/// and TLB contents, which are timing-only in this model). Arbitrary JTE
/// *target* corruption is deliberately not modeled: a `bop` hit commits
/// its target without verification, so silent payload corruption is
/// outside the paper's fault model — real BTBs protect the payload with
/// parity, and a detected error invalidates the entry, which is exactly
/// [`FaultKind::JteInvalidate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Parity-detected corruption of one resident JTE: the entry is
    /// invalidated and counted as a JTE eviction.
    JteInvalidate,
    /// The whole BTB (and the dedicated JTE table, if configured) is
    /// invalidated, JTEs included.
    BtbFlush,
    /// One random bit flips in the key or target of a *verified*
    /// (non-JTE) BTB entry. The kind tag is never flipped, so the entry
    /// can only mispredict within its own verified key space.
    BtbBitFlip,
    /// The return-address stack empties.
    RasFlush,
    /// All caches (L1 I/D and L2 when present) are invalidated.
    CacheInvalidate,
    /// Both TLBs are invalidated.
    TlbInvalidate,
    /// Direction-predictor counters, global history and ITTAGE state are
    /// overwritten with pseudo-random garbage.
    PredictorScramble,
}

impl FaultKind {
    /// Wire name used in the JSONL trace encoding.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::JteInvalidate => "jte_invalidate",
            FaultKind::BtbFlush => "btb_flush",
            FaultKind::BtbBitFlip => "btb_bit_flip",
            FaultKind::RasFlush => "ras_flush",
            FaultKind::CacheInvalidate => "cache_invalidate",
            FaultKind::TlbInvalidate => "tlb_invalidate",
            FaultKind::PredictorScramble => "predictor_scramble",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "jte_invalidate" => FaultKind::JteInvalidate,
            "btb_flush" => FaultKind::BtbFlush,
            "btb_bit_flip" => FaultKind::BtbBitFlip,
            "ras_flush" => FaultKind::RasFlush,
            "cache_invalidate" => FaultKind::CacheInvalidate,
            "tlb_invalidate" => FaultKind::TlbInvalidate,
            "predictor_scramble" => FaultKind::PredictorScramble,
            _ => return None,
        })
    }
}

/// Trace record of one injected fault, attached to the retiring
/// instruction's [`crate::TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What was injected.
    pub kind: FaultKind,
    /// Resident JTEs the injection invalidated. The stat replay folds
    /// this into `jte_evictions`, keeping the JTE population identity
    /// balanced under fault injection.
    pub evicted: u64,
}

/// Deterministic xorshift64 stream shared by the plan's schedule and the
/// fault hooks it drives.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // xorshift has a fixed point at 0; perturb and force non-zero.
        Rng((seed ^ 0x9E37_79B9_7F4A_7C15).max(1))
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A seeded, deterministic schedule of µarch fault injections.
///
/// The plan fires at most one fault every `period` retirements, picking
/// the kind pseudo-randomly from its kind set. Two runs of the same
/// guest with the same plan inject the identical fault sequence, so a
/// faulted run is exactly reproducible.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    name: &'static str,
    rng: Rng,
    period: u64,
    next_at: u64,
    kinds: Vec<FaultKind>,
    injected: u64,
}

impl FaultPlan {
    /// Builds a plan firing one fault from `kinds` every `period`
    /// retirements (the first after `period` instructions).
    ///
    /// # Panics
    /// Panics if `kinds` is empty.
    pub fn new(name: &'static str, seed: u64, period: u64, kinds: Vec<FaultKind>) -> Self {
        assert!(!kinds.is_empty(), "a fault plan needs at least one kind");
        let period = period.max(1);
        FaultPlan { name, rng: Rng::new(seed), period, next_at: period, kinds, injected: 0 }
    }

    /// Preset: JTE corruption — parity-detected JTE invalidations mixed
    /// with bit flips in verified BTB entries.
    pub fn jte_corruption(seed: u64) -> Self {
        FaultPlan::new(
            "jte-corruption",
            seed,
            2_500,
            vec![FaultKind::JteInvalidate, FaultKind::BtbBitFlip],
        )
    }

    /// Preset: BTB flush storm — repeated whole-BTB invalidations plus
    /// RAS drains and predictor scrambles.
    pub fn btb_flush_storm(seed: u64) -> Self {
        FaultPlan::new(
            "btb-flush-storm",
            seed,
            10_000,
            vec![FaultKind::BtbFlush, FaultKind::RasFlush, FaultKind::PredictorScramble],
        )
    }

    /// Preset: memory-system invalidation — cache and TLB flushes.
    pub fn memory_system(seed: u64) -> Self {
        FaultPlan::new(
            "memory-system",
            seed,
            15_000,
            vec![FaultKind::CacheInvalidate, FaultKind::TlbInvalidate],
        )
    }

    /// The three acceptance plans every guest must survive, seeded.
    pub fn standard_plans(seed: u64) -> Vec<FaultPlan> {
        vec![
            FaultPlan::jte_corruption(seed),
            FaultPlan::btb_flush_storm(seed),
            FaultPlan::memory_system(seed),
        ]
    }

    /// The plan's human-readable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Returns the fault kind to inject at this retirement, if one is
    /// due, and advances the schedule.
    pub(crate) fn due(&mut self, instructions: u64) -> Option<FaultKind> {
        if instructions < self.next_at {
            return None;
        }
        self.next_at += self.period;
        self.injected += 1;
        let idx = (self.rng.next() % self.kinds.len() as u64) as usize;
        Some(self.kinds[idx])
    }

    /// The plan's random stream, for the fault hooks.
    pub(crate) fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

/// Compares the *architectural* state of two machines: integer and FP
/// register files, PC, guest output bytes, and every byte of every
/// memory segment. Returns a description of the first difference, or
/// `None` when the two machines computed bit-identical results.
///
/// Timing state (caches, predictors, cycle counts, statistics) is
/// deliberately ignored — that is exactly the state a fault plan is
/// allowed to perturb.
pub fn diff_architectural(a: &Machine, b: &Machine) -> Option<String> {
    for i in 0..32 {
        if a.regs[i] != b.regs[i] {
            return Some(format!("x{i}: {:#x} vs {:#x}", a.regs[i], b.regs[i]));
        }
        if a.fregs[i] != b.fregs[i] {
            return Some(format!("f{i}: {:#x} vs {:#x}", a.fregs[i], b.fregs[i]));
        }
    }
    if a.pc != b.pc {
        return Some(format!("pc: {:#x} vs {:#x}", a.pc, b.pc));
    }
    if a.output() != b.output() {
        return Some(format!(
            "guest output differs: {} vs {} bytes",
            a.output().len(),
            b.output().len()
        ));
    }
    let mut sa = a.mem.segments();
    let mut sb = b.mem.segments();
    loop {
        match (sa.next(), sb.next()) {
            (None, None) => return None,
            (Some((name_a, base_a, data_a)), Some((name_b, base_b, data_b))) => {
                if name_a != name_b || base_a != base_b || data_a.len() != data_b.len() {
                    return Some(format!(
                        "segment layout differs: {name_a}@{base_a:#x} vs {name_b}@{base_b:#x}"
                    ));
                }
                if let Some(off) = (0..data_a.len()).find(|&i| data_a[i] != data_b[i]) {
                    return Some(format!(
                        "memory differs in {name_a} at {:#x}: {:#04x} vs {:#04x}",
                        base_a + off as u64,
                        data_a[off],
                        data_b[off]
                    ));
                }
            }
            _ => return Some("segment count differs".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use scd_isa::{Asm, Inst, LoadOp, Reg};

    /// A compact SCD dispatcher guest: fills a bytecode array, runs a
    /// three-handler interpreter loop with `bop`/`jru`, halts with the
    /// accumulated checksum. Exercises JTEs, the BTB, RAS, caches and
    /// both predictors.
    fn dispatcher_program() -> scd_isa::Program {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::S1, 0x10_0000);
        a.li(Reg::T0, 0);
        a.li(Reg::T1, 400);
        a.label("fill");
        a.andi(Reg::T2, Reg::T0, 1);
        a.slli(Reg::T3, Reg::T0, 2);
        a.add(Reg::T3, Reg::T3, Reg::S1);
        a.sw(Reg::T2, 0, Reg::T3);
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::T1, "fill");
        a.li(Reg::T2, 2);
        a.slli(Reg::T3, Reg::T0, 2);
        a.add(Reg::T3, Reg::T3, Reg::S1);
        a.sw(Reg::T2, 0, Reg::T3);

        a.li(Reg::T0, 0x3f);
        a.setmask(0, Reg::T0);
        a.li(Reg::A2, 0);
        a.la(Reg::S2, "jt");

        a.label("dispatch");
        a.load_op(LoadOp::Lw, 0, Reg::A0, 0, Reg::S1);
        a.addi(Reg::S1, Reg::S1, 4);
        a.bop(0);
        a.andi(Reg::A1, Reg::A0, 0x3f);
        a.sltiu(Reg::T3, Reg::A1, 3);
        a.beqz(Reg::T3, "bad");
        a.slli(Reg::T3, Reg::A1, 3);
        a.add(Reg::T3, Reg::T3, Reg::S2);
        a.ld(Reg::T4, 0, Reg::T3);
        a.jru(0, Reg::T4);

        a.label("h0");
        a.addi(Reg::A2, Reg::A2, 1);
        a.j("dispatch");
        a.label("h1");
        a.addi(Reg::A2, Reg::A2, 2);
        a.j("dispatch");
        a.label("h2");
        a.mv(Reg::A0, Reg::A2);
        a.li(Reg::A7, 0);
        a.ecall();
        a.label("bad");
        a.inst(Inst::Ebreak);

        a.ro_label("jt");
        a.ro_addr("h0");
        a.ro_addr("h1");
        a.ro_addr("h2");
        a.finish().expect("assemble")
    }

    fn run_dispatcher(plan: Option<FaultPlan>) -> Machine {
        let p = dispatcher_program();
        let mut m = Machine::new(SimConfig::embedded_a5(), &p);
        m.map("scratch", 0x10_0000, 0x1000);
        if let Some(plan) = plan {
            m.set_fault_plan(plan);
        }
        let exit = m.run(1_000_000).expect("guest halts");
        assert_eq!(exit.code, 600, "200 zeros (+1) and 200 ones (+2)");
        m
    }

    #[test]
    fn plans_are_deterministic() {
        let mut a = FaultPlan::jte_corruption(42);
        let mut b = FaultPlan::jte_corruption(42);
        let seq_a: Vec<_> = (0..50_000).filter_map(|i| a.due(i)).collect();
        let seq_b: Vec<_> = (0..50_000).filter_map(|i| b.due(i)).collect();
        assert!(!seq_a.is_empty());
        assert_eq!(seq_a, seq_b);
        // A different seed picks a different kind sequence eventually.
        let mut c = FaultPlan::jte_corruption(43);
        let seq_c: Vec<_> = (0..50_000).filter_map(|i| c.due(i)).collect();
        assert_eq!(seq_a.len(), seq_c.len(), "schedule is period-based");
    }

    #[test]
    fn faulted_run_is_architecturally_identical() {
        let clean = run_dispatcher(None);
        // Aggressive small periods so even this short guest sees every
        // fault kind several times. Debug assertions keep StatInvariants
        // checking the faulted run throughout.
        for (name, plan) in [
            (
                "jte",
                FaultPlan::new(
                    "t-jte",
                    7,
                    97,
                    vec![FaultKind::JteInvalidate, FaultKind::BtbBitFlip],
                ),
            ),
            (
                "flush",
                FaultPlan::new(
                    "t-flush",
                    7,
                    131,
                    vec![FaultKind::BtbFlush, FaultKind::RasFlush, FaultKind::PredictorScramble],
                ),
            ),
            (
                "mem",
                FaultPlan::new(
                    "t-mem",
                    7,
                    113,
                    vec![FaultKind::CacheInvalidate, FaultKind::TlbInvalidate],
                ),
            ),
        ] {
            let faulted = run_dispatcher(Some(plan));
            assert!(faulted.fault_plan().unwrap().injected() > 10, "{name}: plan fired");
            assert_eq!(
                diff_architectural(&clean, &faulted),
                None,
                "{name}: architectural state must be bit-identical"
            );
            // Retirement counts may differ — a lost JTE sends that
            // dispatch down the slow path (bounds check + table load +
            // jru), which is extra instructions with the same result.
            // Faults can only *lose* hints, so the faulted run never
            // retires fewer instructions than the clean one.
            assert!(
                faulted.stats.instructions >= clean.stats.instructions,
                "{name}: faults cannot shorten the retired path ({} < {})",
                faulted.stats.instructions,
                clean.stats.instructions
            );
        }
    }

    #[test]
    fn diff_architectural_spots_memory_difference() {
        let mut a = run_dispatcher(None);
        let b = run_dispatcher(None);
        assert_eq!(diff_architectural(&a, &b), None);
        a.mem.write_u8(0x10_0000, 0xFF).unwrap();
        let d = diff_architectural(&a, &b).expect("differs");
        assert!(d.contains("scratch"), "got {d}");
    }

    #[test]
    fn fault_kind_names_roundtrip() {
        for k in [
            FaultKind::JteInvalidate,
            FaultKind::BtbFlush,
            FaultKind::BtbBitFlip,
            FaultKind::RasFlush,
            FaultKind::CacheInvalidate,
            FaultKind::TlbInvalidate,
            FaultKind::PredictorScramble,
        ] {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("nope"), None);
    }
}
