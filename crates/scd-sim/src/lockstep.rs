//! Lockstep co-simulation against the architectural oracle.
//!
//! [`LockstepSink`] is a [`TraceSink`] that carries an `scd-ref`
//! [`RefCore`] snapshot of the machine's architectural state and steps it
//! once per retirement event, comparing every retired instruction's
//! `(pc, next_pc, writeback, effective address, store data)` against the
//! cycle model's [`ArchInfo`] record. The cycle model *drives*: its
//! micro-architectural `bop` outcome (hit or miss — legitimately
//! timing-dependent, Section III of the paper) is replayed into the
//! oracle as a [`BopHint`], and the oracle independently validates that a
//! claimed hit is architecturally justified (valid `Rop`, trained
//! `(bid, Rop) → target` map) and lands on the architecturally correct
//! target. Everything else — every value, every address, every
//! non-`bop` control transfer — must match bit for bit.
//!
//! The sink never aborts the run (sinks are observers); it records the
//! *first* divergence with a bounded window of preceding events and keeps
//! a count of instructions checked, and the harness fails after the run.
//! Fault-injected runs are lockstep-clean too: every modeled fault is an
//! invalidation (see [`crate::fault`]), which may flip future `bop` hits
//! to misses but can never invent a wrong target.

use crate::machine::Machine;
use crate::report;
use crate::trace::{BopOutcome, RingSink, TraceEvent, TraceSink};
use scd_ref::{BopHint, RefCore, RefError, Segment, StepArch};
use std::path::PathBuf;

/// How many trailing events the divergence window keeps.
const WINDOW: usize = 128;

/// The first lockstep mismatch between the cycle model and the oracle.
#[derive(Debug, Clone)]
pub struct LockstepDivergence {
    /// Retirement sequence number of the diverging instruction.
    pub seq: u64,
    /// Its PC (as reported by the cycle model).
    pub pc: u64,
    /// Which compared field diverged (`"pc"`, `"next_pc"`, `"wx"`, `"wf"`,
    /// `"ea"`, `"store"`, or `"ref"` for an oracle-side error).
    pub field: &'static str,
    /// Human-readable detail: both sides' values, or the oracle error.
    pub detail: String,
}

impl std::fmt::Display for LockstepDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lockstep divergence at seq {} pc {:#x} ({}): {}",
            self.seq, self.pc, self.field, self.detail
        )
    }
}

/// A trace sink that co-simulates the reference ISS in lockstep.
#[derive(Debug)]
pub struct LockstepSink {
    core: RefCore,
    window: RingSink,
    divergence: Option<LockstepDivergence>,
    checked: u64,
    skipped: u64,
}

/// Snapshots `machine`'s architectural state (registers, PC, every
/// mapped segment, SCD enable/branch-id config) into a fresh reference
/// core. Take the snapshot after guest setup (image, stacks, entry
/// registers) and before the first retirement.
pub fn snapshot_core(machine: &Machine) -> RefCore {
    let mut text_base = 0;
    let mut text: Vec<u8> = Vec::new();
    let mut segments = Vec::new();
    for (name, base, data) in machine.mem.segments() {
        if name == "text" {
            text_base = base;
            text = data.to_vec();
        } else {
            segments.push(Segment { name: name.to_string(), base, data: data.to_vec() });
        }
    }
    let scd = &machine.config().scd;
    RefCore::from_state(
        text_base,
        &text,
        segments,
        machine.regs,
        machine.fregs,
        machine.pc,
        scd.enabled,
        scd.branch_ids,
    )
}

impl LockstepSink {
    /// Builds a sink around [`snapshot_core`]. Install the result with
    /// [`Machine::set_trace_sink`] *before* running.
    pub fn new(machine: &Machine) -> Self {
        let core = snapshot_core(machine);
        LockstepSink {
            core,
            window: RingSink::new(WINDOW),
            divergence: None,
            checked: 0,
            skipped: 0,
        }
    }

    /// The first divergence, if any.
    pub fn divergence(&self) -> Option<&LockstepDivergence> {
        self.divergence.as_ref()
    }

    /// Instructions compared so far (stops counting at the divergence).
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Events that carried no architectural record (hand-built or legacy
    /// traces only; a live machine always attaches one).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Dumps the event window ending at the divergence to a JSONL file;
    /// `None` if nothing was buffered or the write failed.
    pub fn dump(&self, tag: &str) -> Option<PathBuf> {
        report::dump_window(tag, &self.window)
    }

    fn diverge(&mut self, ev: &TraceEvent, field: &'static str, detail: String) {
        self.divergence = Some(LockstepDivergence {
            seq: ev.seq,
            pc: ev.pc,
            field,
            detail: format!("{detail}; dut: {}", report::describe_event(ev)),
        });
    }

    fn check(&mut self, ev: &TraceEvent) {
        let Some(dut) = ev.arch else {
            self.skipped += 1;
            return;
        };
        // The emulated context-switch flush (and the `jte.flush`
        // instruction) invalidate every Rop *before* this retirement's
        // dispatch can use it; mirror that ordering. Re-flushing on the
        // `jte.flush` instruction itself is idempotent.
        if ev.flush.is_some() {
            self.core.flush_rop();
        }
        if self.core.pc != ev.pc {
            self.diverge(ev, "pc", format!("ref at {:#x}, dut retired {:#x}", self.core.pc, ev.pc));
            return;
        }
        let hint = match ev.bop.map(|b| b.outcome) {
            Some(BopOutcome::Hit) => BopHint::Hit,
            Some(_) => BopHint::Miss,
            None => BopHint::Miss,
        };
        let sa: StepArch = match self.core.step(hint) {
            Ok(sa) => sa,
            Err(e @ (RefError::BopUntrained { .. } | RefError::BopNotValid { .. })) => {
                self.diverge(ev, "ref", format!("dut bop hit rejected by oracle: {e}"));
                return;
            }
            Err(e) => {
                self.diverge(ev, "ref", format!("oracle failed to step: {e}"));
                return;
            }
        };
        let mism: Option<(&'static str, String)> = if sa.next_pc != dut.next_pc {
            Some(("next_pc", format!("ref {:#x}, dut {:#x}", sa.next_pc, dut.next_pc)))
        } else if sa.wx != dut.wx {
            Some(("wx", format!("ref {:?}, dut {:?}", sa.wx, dut.wx)))
        } else if sa.wf != dut.wf {
            Some(("wf", format!("ref {:?}, dut {:?}", sa.wf, dut.wf)))
        } else if sa.ea != dut.ea {
            Some(("ea", format!("ref {:?}, dut {:?}", sa.ea, dut.ea)))
        } else if sa.store != dut.store {
            Some(("store", format!("ref {:?}, dut {:?}", sa.store, dut.store)))
        } else {
            None
        };
        match mism {
            Some((field, detail)) => self.diverge(ev, field, detail),
            None => self.checked += 1,
        }
    }
}

impl TraceSink for LockstepSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.window.event(ev);
        if self.divergence.is_none() {
            self.check(ev);
        }
    }

    fn finish(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::machine::Machine;
    use crate::trace::downcast_sink;
    use scd_isa::{Asm, LoadOp, Reg};

    fn lockstep_run(program: &scd_isa::Program, cfg: SimConfig) -> Box<LockstepSink> {
        let mut m = Machine::new(cfg, program);
        m.set_trace_sink(Box::new(LockstepSink::new(&m)));
        m.run(1_000_000).expect("guest must exit");
        downcast_sink::<LockstepSink>(m.take_trace_sink().unwrap()).unwrap()
    }

    fn dispatch_program() -> scd_isa::Program {
        // The reference-ISS unit tests use the same shape; here the point
        // is running it on the *cycle model* with the oracle attached.
        let mut a = Asm::new(0x1_0000);
        a.la(Reg::S0, "bytes");
        a.la(Reg::S3, "table");
        a.li(Reg::T6, 0xFF);
        a.setmask(0, Reg::T6);
        a.li(Reg::S2, 0);
        a.label("fetch");
        a.slli(Reg::T0, Reg::S2, 3);
        a.add(Reg::T0, Reg::S0, Reg::T0);
        a.load_op(LoadOp::Lbu, 0, Reg::T1, 0, Reg::T0);
        a.bop(0);
        a.slli(Reg::T2, Reg::T1, 3);
        a.add(Reg::T2, Reg::T2, Reg::S3);
        a.ld(Reg::T3, 0, Reg::T2);
        a.jru(0, Reg::T3);
        a.label("h0");
        a.li(Reg::A0, 99);
        a.li(Reg::A7, 0);
        a.ecall();
        a.label("h1");
        a.addi(Reg::S2, Reg::S2, 1);
        a.j("fetch");
        a.ro_label("bytes");
        for b in [1u64, 1, 1, 1, 1, 1, 0] {
            a.ro_word(b);
        }
        a.ro_label("table");
        a.ro_addr("h0");
        a.ro_addr("h1");
        a.finish().unwrap()
    }

    #[test]
    fn dispatch_loop_is_lockstep_clean_with_scd() {
        let sink = lockstep_run(&dispatch_program(), SimConfig::embedded_a5());
        assert!(sink.divergence().is_none(), "{}", sink.divergence().unwrap());
        assert!(sink.checked() > 20, "only {} checked", sink.checked());
        assert_eq!(sink.skipped(), 0);
    }

    #[test]
    fn dispatch_loop_is_lockstep_clean_without_scd() {
        let mut cfg = SimConfig::embedded_a5();
        cfg.scd.enabled = false;
        let sink = lockstep_run(&dispatch_program(), cfg);
        assert!(sink.divergence().is_none(), "{}", sink.divergence().unwrap());
    }

    #[test]
    fn periodic_flush_stays_lockstep_clean() {
        let mut cfg = SimConfig::embedded_a5();
        cfg.scd.flush_interval = Some(16);
        let sink = lockstep_run(&dispatch_program(), cfg);
        assert!(sink.divergence().is_none(), "{}", sink.divergence().unwrap());
    }

    #[test]
    fn a_wrong_writeback_is_caught() {
        // Feed the sink a hand-tampered event stream: run the machine
        // with a recording sink, corrupt one writeback value, replay.
        let p = dispatch_program();
        let mut m = Machine::new(SimConfig::embedded_a5(), &p);
        let mut sink = LockstepSink::new(&m);
        m.set_trace_sink(Box::new(crate::trace::VecSink::default()));
        m.run(1_000_000).unwrap();
        let events =
            downcast_sink::<crate::trace::VecSink>(m.take_trace_sink().unwrap()).unwrap().events;
        assert!(events.len() > 10);
        for (i, mut ev) in events.into_iter().enumerate() {
            if i == 7 {
                if let Some(a) = &mut ev.arch {
                    if let Some((_, v)) = &mut a.wx {
                        *v ^= 0x4;
                    } else {
                        a.wx = Some((31, 0xBAD));
                    }
                }
            }
            sink.event(&ev);
        }
        let d = sink.divergence().expect("tampered stream must diverge");
        assert_eq!(d.seq, 7);
        assert_eq!(d.field, "wx");
    }
}
