//! Whole-machine checkpointing: serialize core *and* µarch state so a
//! run can be interrupted and resumed with bit-identical results.
//!
//! [`crate::Machine::snapshot`] captures everything timing-relevant —
//! register files, PC, cycle count, scoreboard, SCD operand registers,
//! statistics, caches, TLBs, BTB/JTE tables, RAS, both predictors and
//! all memory segments — into a [`Snapshot`]. Restoring it into a
//! machine built from the *same* config and program (checked via a
//! fingerprint) and continuing the run reproduces the uninterrupted
//! run's [`crate::SimStats`] exactly; a test asserts this.
//!
//! The byte encoding ([`Snapshot::to_bytes`]/[`Snapshot::from_bytes`])
//! is a self-contained little-endian format (magic `SCDCKPT2`) with no
//! external dependencies, used by `scd-cli run --checkpoint-every` /
//! `--resume`.
//!
//! Memory segments are stored *zero-trimmed*: each entry records the
//! segment's full size plus only the bytes up to its last non-zero one,
//! and restore zero-fills the tail. Guests map a ~200 MB mostly
//! untouched heap, and the sampled-simulation scheduler snapshots at
//! every run start — cloning all of it made a snapshot cost more than
//! the intervals it protects. Trimming is semantically invisible (the
//! machine zero-initializes segments) and shrinks both in-memory
//! snapshots and checkpoint files by orders of magnitude.

use crate::stats::SimStats;
use std::fmt;

/// Magic prefix of the checkpoint byte format. `SCDCKPT1` stored full
/// segment images; the zero-trimmed `SCDCKPT2` is not
/// backwards-compatible, and old checkpoint files are rejected with a
/// bad-magic error rather than misread.
const MAGIC: &[u8; 8] = b"SCDCKPT2";

/// Error decoding or restoring a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream is not a well-formed checkpoint.
    Format(String),
    /// The checkpoint was taken from a different config/program.
    Fingerprint {
        /// Fingerprint of the machine being restored into.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Format(m) => write!(f, "malformed checkpoint: {m}"),
            SnapshotError::Fingerprint { expected, found } => write!(
                f,
                "checkpoint is for a different config/program \
                 (machine fingerprint {expected:#018x}, snapshot {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A point-in-time capture of a [`crate::Machine`]'s complete state.
///
/// Opaque by design: the only consumers are
/// [`crate::Machine::restore`] and the byte codec. The capture excludes
/// the trace sink, profiler and invariant checker (observers, not
/// state) and any installed fault plan; restoring disables invariant
/// checking on the target machine because the replay checker assumes it
/// observed the run from instruction zero.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) fingerprint: u64,
    /// All scalar core + µarch state, in the fixed order produced by
    /// `Machine::snapshot`.
    pub(crate) words: Vec<u64>,
    /// Memory segments as (name, base, full size, zero-trimmed data):
    /// `data` holds the segment's bytes up to its last non-zero one, and
    /// everything from `data.len()` to `size` is implicitly zero.
    pub(crate) segments: Vec<(String, u64, u64, Vec<u8>)>,
    /// Guest output bytes emitted so far.
    pub(crate) output: Vec<u8>,
}

impl Snapshot {
    /// The config/program fingerprint this snapshot was taken from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Serializes the snapshot into the `SCDCKPT1` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        push_u64(&mut out, self.fingerprint);
        push_u64(&mut out, self.words.len() as u64);
        for &w in &self.words {
            push_u64(&mut out, w);
        }
        push_bytes(&mut out, &self.output);
        push_u64(&mut out, self.segments.len() as u64);
        for (name, base, size, data) in &self.segments {
            push_bytes(&mut out, name.as_bytes());
            push_u64(&mut out, *base);
            push_u64(&mut out, *size);
            push_bytes(&mut out, data);
        }
        out
    }

    /// Parses a snapshot back from bytes produced by [`Self::to_bytes`].
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on truncated or malformed
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(SnapshotError::Format("bad magic".into()));
        }
        let fingerprint = r.u64()?;
        let nwords = r.u64()? as usize;
        if nwords > bytes.len() / 8 {
            return Err(SnapshotError::Format("word count exceeds input".into()));
        }
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(r.u64()?);
        }
        let output = r.bytes_field()?.to_vec();
        let nsegs = r.u64()? as usize;
        if nsegs > bytes.len() {
            return Err(SnapshotError::Format("segment count exceeds input".into()));
        }
        let mut segments = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            let name = String::from_utf8(r.bytes_field()?.to_vec())
                .map_err(|_| SnapshotError::Format("segment name not utf-8".into()))?;
            let base = r.u64()?;
            let size = r.u64()?;
            let data = r.bytes_field()?.to_vec();
            if data.len() as u64 > size {
                return Err(SnapshotError::Format(format!(
                    "segment {name} carries {} bytes but declares size {size}",
                    data.len()
                )));
            }
            segments.push((name, base, size, data));
        }
        if r.pos != bytes.len() {
            return Err(SnapshotError::Format("trailing bytes".into()));
        }
        Ok(Snapshot {
            fingerprint,
            words,
            segments,
            output,
        })
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_bytes(out: &mut Vec<u8>, b: &[u8]) {
    push_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| SnapshotError::Format("truncated".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn bytes_field(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.u64()? as usize;
        self.take(n)
    }
}

/// Read cursor over a snapshot's word stream, handed to each component's
/// `restore_words`.
///
/// Exhausting the stream or failing a geometry check returns
/// [`SnapshotError::Format`]: the fingerprint covers only the (config,
/// program) pair, so a truncated or bit-flipped checkpoint file can pass
/// it while the word stream disagrees with the machine's shape. That is
/// a bad input, not an internal bug — callers surface it as the
/// documented checkpoint error instead of panicking.
pub(crate) struct Cursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(words: &'a [u64]) -> Self {
        Cursor { words, pos: 0 }
    }

    pub(crate) fn next(&mut self) -> Result<u64, SnapshotError> {
        let w = *self
            .words
            .get(self.pos)
            .ok_or_else(|| SnapshotError::Format("snapshot word stream exhausted".into()))?;
        self.pos += 1;
        Ok(w)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }
}

/// Geometry / consistency check during restore; `false` means the word
/// stream disagrees with the machine's shape.
pub(crate) fn check(ok: bool, what: &str) -> Result<(), SnapshotError> {
    if ok {
        Ok(())
    } else {
        Err(SnapshotError::Format(what.into()))
    }
}

/// FNV-1a offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a folding step over a byte slice, chained via `init`.
pub(crate) fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes every [`SimStats`] field in fixed order.
pub(crate) fn stats_to_words(s: &SimStats, out: &mut Vec<u64>) {
    out.extend_from_slice(&[
        s.cycles,
        s.instructions,
        s.dispatch_instructions,
        s.loads,
        s.stores,
    ]);
    for b in [
        &s.cond,
        &s.direct,
        &s.ret,
        &s.indirect_dispatch,
        &s.indirect_other,
    ] {
        out.extend_from_slice(&[b.executed, b.mispredicted]);
    }
    out.extend_from_slice(&[
        s.bop_executed,
        s.bop_hits,
        s.bop_misses,
        s.bop_stall_cycles,
        s.jru_executed,
    ]);
    for a in [&s.icache, &s.dcache, &s.l2, &s.itlb, &s.dtlb] {
        out.extend_from_slice(&[a.accesses, a.misses, a.writebacks]);
    }
    let b = &s.btb;
    out.extend_from_slice(&[
        b.jte_inserts,
        b.jte_cap_skips,
        b.btb_evicted_by_jte,
        b.jte_evictions,
        b.btb_blocked_by_jte,
        b.jte_flushes,
        b.jte_flushed,
    ]);
}

/// Inverse of [`stats_to_words`].
#[allow(clippy::field_reassign_with_default)]
pub(crate) fn stats_from_words(c: &mut Cursor) -> Result<SimStats, SnapshotError> {
    let mut s = SimStats::default();
    s.cycles = c.next()?;
    s.instructions = c.next()?;
    s.dispatch_instructions = c.next()?;
    s.loads = c.next()?;
    s.stores = c.next()?;
    for b in [
        &mut s.cond,
        &mut s.direct,
        &mut s.ret,
        &mut s.indirect_dispatch,
        &mut s.indirect_other,
    ] {
        b.executed = c.next()?;
        b.mispredicted = c.next()?;
    }
    s.bop_executed = c.next()?;
    s.bop_hits = c.next()?;
    s.bop_misses = c.next()?;
    s.bop_stall_cycles = c.next()?;
    s.jru_executed = c.next()?;
    for a in [
        &mut s.icache,
        &mut s.dcache,
        &mut s.l2,
        &mut s.itlb,
        &mut s.dtlb,
    ] {
        a.accesses = c.next()?;
        a.misses = c.next()?;
        a.writebacks = c.next()?;
    }
    let b = &mut s.btb;
    b.jte_inserts = c.next()?;
    b.jte_cap_skips = c.next()?;
    b.btb_evicted_by_jte = c.next()?;
    b.jte_evictions = c.next()?;
    b.btb_blocked_by_jte = c.next()?;
    b.jte_flushes = c.next()?;
    b.jte_flushed = c.next()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let snap = Snapshot {
            fingerprint: 0xfeed_beef,
            words: vec![1, 2, 3, u64::MAX],
            segments: vec![
                ("text".into(), 0x1000, 3, vec![1, 2, 3]),
                ("heap".into(), 0x4000, 0x100, vec![]),
            ],
            output: vec![b'h', b'i'],
        };
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.fingerprint, snap.fingerprint);
        assert_eq!(back.words, snap.words);
        assert_eq!(back.segments, snap.segments);
        assert_eq!(back.output, snap.output);
    }

    #[test]
    fn malformed_bytes_error() {
        assert!(Snapshot::from_bytes(b"").is_err());
        assert!(Snapshot::from_bytes(b"NOTCKPT0").is_err());
        let snap = Snapshot {
            fingerprint: 1,
            words: vec![7],
            segments: vec![],
            output: vec![],
        };
        let mut bytes = snap.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Snapshot::from_bytes(&bytes).is_err());
        // Trailing garbage is rejected too.
        let mut bytes = snap.to_bytes();
        bytes.push(0);
        assert!(Snapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn oversized_segment_data_is_rejected() {
        let snap = Snapshot {
            fingerprint: 1,
            words: vec![],
            segments: vec![("a".into(), 0, 2, vec![1, 2, 3])],
            output: vec![],
        };
        assert!(matches!(
            Snapshot::from_bytes(&snap.to_bytes()),
            Err(SnapshotError::Format(_))
        ));
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn stats_words_roundtrip() {
        let mut s = SimStats::default();
        s.cycles = 123;
        s.instructions = 45;
        s.cond.executed = 6;
        s.cond.mispredicted = 2;
        s.bop_hits = 9;
        s.l2.misses = 3;
        s.btb.jte_evictions = 8;
        let mut w = Vec::new();
        stats_to_words(&s, &mut w);
        let mut c = Cursor::new(&w);
        let back = stats_from_words(&mut c).unwrap();
        assert_eq!(back, s);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn exhausted_word_stream_is_a_typed_error() {
        let w = vec![1u64, 2];
        let mut c = Cursor::new(&w);
        assert_eq!(c.next(), Ok(1));
        assert_eq!(c.next(), Ok(2));
        assert!(matches!(c.next(), Err(SnapshotError::Format(_))));
        // A truncated word stream must fail the full stats decode the
        // same way, not panic.
        let mut c = Cursor::new(&w);
        assert!(matches!(
            stats_from_words(&mut c),
            Err(SnapshotError::Format(_))
        ));
    }
}
