//! Interval sampling: the `SamplingPlan` / `SampleReport` types and the
//! hand-rolled CLT confidence-interval math behind the sampled
//! simulation mode (SMARTS-style systematic sampling with functional
//! warming — Wunderlich et al., ISCA 2003 — adapted to this engine's
//! three execution modes).
//!
//! The scheduler itself lives in `machine/sampling.rs` (it needs the
//! machine's internals); this module owns everything a *client* of
//! sampled simulation touches: plan parsing and validation, the ±
//! interval math, and the per-run [`SampleReport`].
//!
//! # The three execution modes
//!
//! Every retired instruction runs in exactly one [`ExecMode`]:
//!
//! * [`ExecMode::FastForward`] — pure architectural execution on the
//!   `scd-ref` reference core. No timing model, no predictor or cache
//!   updates. Fastest; used to skip between sampling intervals.
//! * [`ExecMode::Warming`] — the detailed loop with the cycle clock
//!   frozen: I-cache / D-cache / TLB / BTB / ITTAGE / JTE contents are
//!   updated exactly as in detailed mode, but no cycles are charged and
//!   the issue scoreboard is bypassed. Repairs the micro-architectural
//!   state the fast-forward leg left stale, so measurement does not
//!   start from misleadingly cold (or misleadingly stale) structures.
//! * [`ExecMode::Detailed`] — the full cycle-approximate model; the
//!   only mode that contributes to the sampled estimate.

use crate::stats::SimStats;

/// Which execution mode a stretch of instructions runs under. See the
/// module docs for what each mode updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Full cycle-approximate timing simulation.
    Detailed,
    /// Functional execution that updates micro-architectural state
    /// (caches, TLBs, predictors, JTEs) but charges no cycles.
    Warming,
    /// Pure architectural execution on the reference core.
    FastForward,
}

impl ExecMode {
    /// Stable lowercase name (used in reports and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Detailed => "detailed",
            ExecMode::Warming => "warming",
            ExecMode::FastForward => "fast-forward",
        }
    }
}

/// A systematic-sampling schedule: every `period` instructions, warm
/// for `warm_len()` and measure `measure` in detailed mode;
/// fast-forward the remaining `period - warm_len() - measure`.
///
/// Warming lengths are per structure class: how many instructions a
/// structure needs to reach steady state differs by class and by
/// workload, so paying one class's window for another wastes warming
/// work. (On this repo's interpreter workloads the measured ordering —
/// `results/warming_sensitivity.txt` — is that caches/TLBs need the
/// longest window while the predictors retrain almost instantly on
/// the hot dispatch loop; other workloads can invert that, which is
/// why the windows are per-class rather than hard-coded.) The
/// replay-driven warming engine turns each structure class on only for
/// the last `N` instructions of the warm leg:
///
/// * `warmup` — caches and TLBs (I$/D$/L2, I-TLB/D-TLB), and the base
///   warming length the other windows default to;
/// * `btb_warmup` — PC-indexed BTB entries (direct jumps, conditional
///   branch targets);
/// * `pred_warmup` — direction predictor, ITTAGE, RAS and the indirect
///   (`jalr`) BTB traffic.
///
/// JTE training and `bop` resolution are architecturally coupled to the
/// record stream and always run for the whole warm leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPlan {
    /// Instructions per sampling interval.
    pub period: u64,
    /// Cache/TLB warming window (and the default for the per-structure
    /// windows below).
    pub warmup: u64,
    /// BTB (PC-entry) warming window.
    pub btb_warmup: u64,
    /// Direction/ITTAGE/RAS/indirect warming window.
    pub pred_warmup: u64,
    /// Detailed instructions measured per interval.
    pub measure: u64,
    /// Paranoia knob: snapshot before each measured window, re-run it
    /// after a restore, and assert the two passes produced bit-identical
    /// stats deltas and end states. Roughly doubles the (small) detailed
    /// fraction; never changes results, so it is excluded from cache
    /// manifests. The sampled-vs-full golden test runs with it on.
    pub self_check: bool,
}

impl SamplingPlan {
    /// Builds a validated plan with uniform per-structure windows.
    ///
    /// # Errors
    /// A human-readable message when `measure` is zero or
    /// `warmup + measure` exceeds `period`.
    pub fn new(period: u64, warmup: u64, measure: u64) -> Result<SamplingPlan, String> {
        SamplingPlan {
            period,
            warmup,
            btb_warmup: warmup,
            pred_warmup: warmup,
            measure,
            self_check: false,
        }
        .validated()
    }

    /// Re-validates `self` after field edits.
    fn validated(self) -> Result<SamplingPlan, String> {
        if self.measure == 0 {
            return Err("sampling plan: measured window must be at least 1 instruction".into());
        }
        if self.warm_len().saturating_add(self.measure) > self.period {
            return Err(format!(
                "sampling plan: warmup + measure ({} + {}) exceeds the period ({})",
                self.warm_len(),
                self.measure,
                self.period
            ));
        }
        Ok(self)
    }

    /// Returns the plan with per-structure BTB / predictor windows.
    ///
    /// # Errors
    /// A human-readable message when the longest window plus `measure`
    /// exceeds the period.
    pub fn with_windows(self, btb_warmup: u64, pred_warmup: u64) -> Result<SamplingPlan, String> {
        SamplingPlan {
            btb_warmup,
            pred_warmup,
            ..self
        }
        .validated()
    }

    /// Parses `"period:warmup[/BTB=..,PRED=..]:measure"` with optional
    /// `k` (×10³) and `M` (×10⁶) suffixes, e.g. `"1M:50k:20k"` or
    /// `"1M:20k/BTB=30k,PRED=80k:20k"`.
    ///
    /// # Errors
    /// A human-readable message on malformed input or an invalid plan.
    pub fn parse(s: &str) -> Result<SamplingPlan, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [p, w, m] = parts.as_slice() else {
            return Err(format!(
                "sampling plan {s:?}: expected period:warmup[/BTB=..,PRED=..]:measure \
                 (e.g. 1M:50k:20k)"
            ));
        };
        let (w, windows) = match w.split_once('/') {
            Some((base, rest)) => (base, Some(rest)),
            None => (*w, None),
        };
        let mut plan = SamplingPlan::new(parse_count(p)?, parse_count(w)?, parse_count(m)?)?;
        if let Some(rest) = windows {
            for item in rest.split(',') {
                let Some((key, val)) = item.split_once('=') else {
                    return Err(format!(
                        "sampling plan: bad per-structure window {item:?} \
                         (expected BTB=.. or PRED=..)"
                    ));
                };
                let val = parse_count(val)?;
                match key {
                    "BTB" | "btb" => plan.btb_warmup = val,
                    "PRED" | "pred" => plan.pred_warmup = val,
                    _ => {
                        return Err(format!(
                            "sampling plan: unknown warm window {key:?} (expected BTB or PRED)"
                        ))
                    }
                }
            }
            plan = plan.validated()?;
        }
        Ok(plan)
    }

    /// The committed qualified default plan (what `--sample default`
    /// resolves to in the CLI and the sweep): uniform windows, because
    /// the per-structure sensitivity study
    /// (`results/warming_sensitivity.txt`) shows the cache/TLB
    /// hierarchy is the only structure class with a real warming
    /// requirement — drift flattens at ~20k retirements — while the
    /// BTB and predictors retrain within ~1k, so the cache-sized
    /// window covers everything. `quick` scales the cadence down to
    /// tiny-input guest lengths for CI.
    #[must_use]
    pub fn qualified_default(quick: bool) -> SamplingPlan {
        let spec = if quick { "250k:20k:10k" } else { "1M:20k:20k" };
        SamplingPlan::parse(spec).expect("builtin plan")
    }

    /// Length of the warm leg: the longest per-structure window (each
    /// structure class activates for the tail of the leg its own window
    /// spans).
    pub fn warm_len(&self) -> u64 {
        self.warmup.max(self.btb_warmup).max(self.pred_warmup)
    }

    /// Instructions fast-forwarded per interval.
    pub fn skip(&self) -> u64 {
        self.period - self.warm_len() - self.measure
    }

    /// The warmup field as it appears in `Display` and manifests:
    /// per-structure overrides are emitted only when they differ from
    /// the base window, so uniform plans render exactly as before
    /// per-structure windows existed (keeping their cache manifests —
    /// and thus cached results — valid).
    fn warm_field(&self) -> String {
        let mut s = self.warmup.to_string();
        let mut over = Vec::new();
        if self.btb_warmup != self.warmup {
            over.push(format!("BTB={}", self.btb_warmup));
        }
        if self.pred_warmup != self.warmup {
            over.push(format!("PRED={}", self.pred_warmup));
        }
        if !over.is_empty() {
            s.push('/');
            s.push_str(&over.join(","));
        }
        s
    }

    /// The line this plan contributes to a result-cache manifest.
    /// `self_check` is excluded: it can only abort, never change a
    /// result, so it must not split cache keys.
    pub fn manifest(&self) -> String {
        format!("sample {}:{}:{}", self.period, self.warm_field(), self.measure)
    }
}

impl std::fmt::Display for SamplingPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.period, self.warm_field(), self.measure)
    }
}

fn parse_count(s: &str) -> Result<u64, String> {
    let (digits, scale) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 1_000u64),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 1_000_000u64),
        _ => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("sampling plan: bad instruction count {s:?}"))?;
    n.checked_mul(scale)
        .ok_or_else(|| format!("sampling plan: count {s:?} overflows"))
}

/// Sample mean and 95% CLT confidence half-width of `samples`
/// (`1.96 · s/√n` with the Bessel-corrected sample stddev `s`). The
/// half-width is 0 for fewer than two samples — a single interval has
/// no dispersion estimate, not a tight one.
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let n = samples.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    (mean, 1.96 * (var / n as f64).sqrt())
}

/// What one sampled run measured and estimated. Returned by
/// `Machine::run_sampled` next to the guest's [`Exit`](crate::Exit);
/// the machine's `stats` are overwritten with the scaled estimate, so
/// everything downstream (validation, reports) reads estimated counters
/// transparently — this report carries the sampling metadata those
/// counters no longer show.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleReport {
    /// The plan the run executed.
    pub plan: SamplingPlan,
    /// Completed (possibly partial-at-exit) measured intervals.
    pub intervals: u64,
    /// Exact total retired instructions (all three modes).
    pub total_insts: u64,
    /// Instructions retired inside measured windows.
    pub measured_insts: u64,
    /// Cycles charged inside measured windows.
    pub measured_cycles: u64,
    /// Instructions retired in fast-forward mode.
    pub ff_insts: u64,
    /// Instructions retired in warming mode.
    pub warm_insts: u64,
    /// Mean per-interval CPI.
    pub cpi_mean: f64,
    /// 95% confidence half-width of the per-interval CPI.
    pub cpi_ci95: f64,
    /// Estimated total cycles (`measured_cycles` scaled by
    /// `total_insts / measured_insts`).
    pub cycles_est: u64,
    /// 95% confidence half-width on `cycles_est`
    /// (`cpi_ci95 × total_insts`, rounded).
    pub cycles_ci95: u64,
    /// True when the run fell back to exact full-detail simulation
    /// because the guest exited before the first measured window (the
    /// estimate is then exact and the ± fields are zero).
    pub exact_fallback: bool,
}

/// Accumulates per-interval measured deltas during a sampled run and
/// produces the scaled estimate at the end.
#[derive(Debug, Default)]
pub struct SampleAccum {
    /// Summed counter deltas over every measured window.
    sum: SimStats,
    /// Per-interval CPI samples.
    cpi: Vec<f64>,
}

impl SampleAccum {
    /// Records one measured window's counter delta.
    pub fn record(&mut self, delta: &SimStats) {
        if delta.instructions > 0 {
            self.cpi
                .push(delta.cycles as f64 / delta.instructions as f64);
        }
        self.sum.accumulate(delta);
    }

    /// Measured intervals recorded so far.
    pub fn intervals(&self) -> u64 {
        self.cpi.len() as u64
    }

    /// Instructions measured so far.
    pub fn measured_insts(&self) -> u64 {
        self.sum.instructions
    }

    /// Cycles charged inside measured windows so far.
    pub fn measured_cycles(&self) -> u64 {
        self.sum.cycles
    }

    /// Scales the measured counter sums to `total_insts` and returns
    /// the estimated whole-run statistics (instructions kept exact)
    /// with the CPI mean/CI. Requires at least one recorded interval.
    pub fn estimate(&self, total_insts: u64) -> (SimStats, f64, f64) {
        let (mean, ci) = mean_ci95(&self.cpi);
        let mut est = self.sum.scaled(total_insts, self.sum.instructions.max(1));
        est.instructions = total_insts;
        (est, mean, ci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_suffixes() {
        let p = SamplingPlan::parse("1M:50k:20k").unwrap();
        assert_eq!((p.period, p.warmup, p.measure), (1_000_000, 50_000, 20_000));
        assert_eq!(p.skip(), 930_000);
        let p = SamplingPlan::parse("1000:0:1000").unwrap();
        assert_eq!((p.period, p.warmup, p.measure), (1000, 0, 1000));
        assert_eq!(p.skip(), 0);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(SamplingPlan::parse("1M:50k").is_err());
        assert!(SamplingPlan::parse("1M:50k:0").is_err());
        assert!(SamplingPlan::parse("100:90:20").is_err());
        assert!(SamplingPlan::parse("x:1:1").is_err());
        assert!(SamplingPlan::parse("1M:1k:2k:3k").is_err());
    }

    #[test]
    fn parse_per_structure_windows() {
        let p = SamplingPlan::parse("1M:20k/BTB=30k,PRED=80k:20k").unwrap();
        assert_eq!(
            (p.period, p.warmup, p.btb_warmup, p.pred_warmup, p.measure),
            (1_000_000, 20_000, 30_000, 80_000, 20_000)
        );
        // The warm leg spans the longest window; skip shrinks to match.
        assert_eq!(p.warm_len(), 80_000);
        assert_eq!(p.skip(), 900_000);
        // Round-trips through Display.
        assert_eq!(SamplingPlan::parse(&p.to_string()).unwrap(), p);
        // A uniform override collapses back to the bare field.
        let q = SamplingPlan::parse("1M:20k/BTB=20k,PRED=20k:20k").unwrap();
        assert_eq!(q, SamplingPlan::parse("1M:20k:20k").unwrap());
    }

    #[test]
    fn per_structure_windows_reject_invalid() {
        // The longest window (not the base) bounds warm + measure.
        assert!(SamplingPlan::parse("100k:10k/PRED=95k:10k").is_err());
        assert!(SamplingPlan::parse("1M:10k/ITTAGE=5k:10k").is_err());
        assert!(SamplingPlan::parse("1M:10k/BTB:10k").is_err());
        let p = SamplingPlan::new(100_000, 10_000, 10_000).unwrap();
        assert!(p.with_windows(10_000, 95_000).is_err());
        assert_eq!(
            p.with_windows(5_000, 50_000).unwrap().warm_len(),
            50_000
        );
    }

    #[test]
    fn manifest_and_display_are_suffix_free() {
        let p = SamplingPlan::parse("1M:50k:20k").unwrap();
        assert_eq!(p.manifest(), "sample 1000000:50000:20000");
        assert_eq!(p.to_string(), "1000000:50000:20000");
        // self_check never splits cache keys.
        let mut q = p;
        q.self_check = true;
        assert_eq!(p.manifest(), q.manifest());
        // Per-structure overrides do split cache keys — but only when
        // they actually differ from the base window.
        let r = SamplingPlan::parse("1M:50k/PRED=80k:20k").unwrap();
        assert_eq!(r.manifest(), "sample 1000000:50000/PRED=80000:20000");
        let s = SamplingPlan::parse("1M:50k/PRED=50k,BTB=50k:20k").unwrap();
        assert_eq!(s.manifest(), p.manifest());
    }

    #[test]
    fn ci_math() {
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_ci95(&[2.5]), (2.5, 0.0));
        // Identical samples: zero dispersion.
        let (m, ci) = mean_ci95(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!((m, ci), (2.0, 0.0));
        // Hand-checked: samples 1,3 → mean 2, s = √2, half = 1.96·√(2/2).
        let (m, ci) = mean_ci95(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((ci - 1.96).abs() < 1e-12);
    }

    #[test]
    fn accum_estimates_scale() {
        let mut acc = SampleAccum::default();
        let mut d = SimStats {
            instructions: 100,
            cycles: 200,
            loads: 10,
            ..Default::default()
        };
        d.icache.misses = 4;
        acc.record(&d);
        acc.record(&d);
        let (est, mean, ci) = acc.estimate(2000);
        assert_eq!(est.instructions, 2000);
        assert_eq!(est.cycles, 4000);
        assert_eq!(est.loads, 200);
        assert_eq!(est.icache.misses, 80);
        assert!((mean - 2.0).abs() < 1e-12);
        assert_eq!(ci, 0.0);
    }
}
