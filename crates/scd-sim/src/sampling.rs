//! Interval sampling: the `SamplingPlan` / `SampleReport` types and the
//! hand-rolled CLT confidence-interval math behind the sampled
//! simulation mode (SMARTS-style systematic sampling with functional
//! warming — Wunderlich et al., ISCA 2003 — adapted to this engine's
//! three execution modes).
//!
//! The scheduler itself lives in `machine/sampling.rs` (it needs the
//! machine's internals); this module owns everything a *client* of
//! sampled simulation touches: plan parsing and validation, the ±
//! interval math, and the per-run [`SampleReport`].
//!
//! # The three execution modes
//!
//! Every retired instruction runs in exactly one [`ExecMode`]:
//!
//! * [`ExecMode::FastForward`] — pure architectural execution on the
//!   `scd-ref` reference core. No timing model, no predictor or cache
//!   updates. Fastest; used to skip between sampling intervals.
//! * [`ExecMode::Warming`] — the detailed loop with the cycle clock
//!   frozen: I-cache / D-cache / TLB / BTB / ITTAGE / JTE contents are
//!   updated exactly as in detailed mode, but no cycles are charged and
//!   the issue scoreboard is bypassed. Repairs the micro-architectural
//!   state the fast-forward leg left stale, so measurement does not
//!   start from misleadingly cold (or misleadingly stale) structures.
//! * [`ExecMode::Detailed`] — the full cycle-approximate model; the
//!   only mode that contributes to the sampled estimate.

use crate::stats::SimStats;

/// Which execution mode a stretch of instructions runs under. See the
/// module docs for what each mode updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Full cycle-approximate timing simulation.
    Detailed,
    /// Functional execution that updates micro-architectural state
    /// (caches, TLBs, predictors, JTEs) but charges no cycles.
    Warming,
    /// Pure architectural execution on the reference core.
    FastForward,
}

impl ExecMode {
    /// Stable lowercase name (used in reports and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Detailed => "detailed",
            ExecMode::Warming => "warming",
            ExecMode::FastForward => "fast-forward",
        }
    }
}

/// A systematic-sampling schedule: every `period` instructions, warm
/// for `warmup` and measure `measure` in detailed mode; fast-forward
/// the remaining `period - warmup - measure`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPlan {
    /// Instructions per sampling interval.
    pub period: u64,
    /// Functionally-warmed instructions before each measured window.
    pub warmup: u64,
    /// Detailed instructions measured per interval.
    pub measure: u64,
    /// Paranoia knob: snapshot before each measured window, re-run it
    /// after a restore, and assert the two passes produced bit-identical
    /// stats deltas and end states. Roughly doubles the (small) detailed
    /// fraction; never changes results, so it is excluded from cache
    /// manifests. The sampled-vs-full golden test runs with it on.
    pub self_check: bool,
}

impl SamplingPlan {
    /// Builds a validated plan.
    ///
    /// # Errors
    /// A human-readable message when `measure` is zero or
    /// `warmup + measure` exceeds `period`.
    pub fn new(period: u64, warmup: u64, measure: u64) -> Result<SamplingPlan, String> {
        if measure == 0 {
            return Err("sampling plan: measured window must be at least 1 instruction".into());
        }
        if warmup.saturating_add(measure) > period {
            return Err(format!(
                "sampling plan: warmup + measure ({} + {}) exceeds the period ({})",
                warmup, measure, period
            ));
        }
        Ok(SamplingPlan {
            period,
            warmup,
            measure,
            self_check: false,
        })
    }

    /// Parses `"period:warmup:measure"` with optional `k` (×10³) and
    /// `M` (×10⁶) suffixes, e.g. `"1M:50k:20k"`.
    ///
    /// # Errors
    /// A human-readable message on malformed input or an invalid plan.
    pub fn parse(s: &str) -> Result<SamplingPlan, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [p, w, m] = parts.as_slice() else {
            return Err(format!(
                "sampling plan {s:?}: expected period:warmup:measure (e.g. 1M:50k:20k)"
            ));
        };
        SamplingPlan::new(parse_count(p)?, parse_count(w)?, parse_count(m)?)
    }

    /// Instructions fast-forwarded per interval.
    pub fn skip(&self) -> u64 {
        self.period - self.warmup - self.measure
    }

    /// The line this plan contributes to a result-cache manifest.
    /// `self_check` is excluded: it can only abort, never change a
    /// result, so it must not split cache keys.
    pub fn manifest(&self) -> String {
        format!("sample {}:{}:{}", self.period, self.warmup, self.measure)
    }
}

impl std::fmt::Display for SamplingPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.period, self.warmup, self.measure)
    }
}

fn parse_count(s: &str) -> Result<u64, String> {
    let (digits, scale) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 1_000u64),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 1_000_000u64),
        _ => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("sampling plan: bad instruction count {s:?}"))?;
    n.checked_mul(scale)
        .ok_or_else(|| format!("sampling plan: count {s:?} overflows"))
}

/// Sample mean and 95% CLT confidence half-width of `samples`
/// (`1.96 · s/√n` with the Bessel-corrected sample stddev `s`). The
/// half-width is 0 for fewer than two samples — a single interval has
/// no dispersion estimate, not a tight one.
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let n = samples.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    (mean, 1.96 * (var / n as f64).sqrt())
}

/// What one sampled run measured and estimated. Returned by
/// `Machine::run_sampled` next to the guest's [`Exit`](crate::Exit);
/// the machine's `stats` are overwritten with the scaled estimate, so
/// everything downstream (validation, reports) reads estimated counters
/// transparently — this report carries the sampling metadata those
/// counters no longer show.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleReport {
    /// The plan the run executed.
    pub plan: SamplingPlan,
    /// Completed (possibly partial-at-exit) measured intervals.
    pub intervals: u64,
    /// Exact total retired instructions (all three modes).
    pub total_insts: u64,
    /// Instructions retired inside measured windows.
    pub measured_insts: u64,
    /// Cycles charged inside measured windows.
    pub measured_cycles: u64,
    /// Instructions retired in fast-forward mode.
    pub ff_insts: u64,
    /// Instructions retired in warming mode.
    pub warm_insts: u64,
    /// Mean per-interval CPI.
    pub cpi_mean: f64,
    /// 95% confidence half-width of the per-interval CPI.
    pub cpi_ci95: f64,
    /// Estimated total cycles (`measured_cycles` scaled by
    /// `total_insts / measured_insts`).
    pub cycles_est: u64,
    /// 95% confidence half-width on `cycles_est`
    /// (`cpi_ci95 × total_insts`, rounded).
    pub cycles_ci95: u64,
    /// True when the run fell back to exact full-detail simulation
    /// because the guest exited before the first measured window (the
    /// estimate is then exact and the ± fields are zero).
    pub exact_fallback: bool,
}

/// Accumulates per-interval measured deltas during a sampled run and
/// produces the scaled estimate at the end.
#[derive(Debug, Default)]
pub struct SampleAccum {
    /// Summed counter deltas over every measured window.
    sum: SimStats,
    /// Per-interval CPI samples.
    cpi: Vec<f64>,
}

impl SampleAccum {
    /// Records one measured window's counter delta.
    pub fn record(&mut self, delta: &SimStats) {
        if delta.instructions > 0 {
            self.cpi
                .push(delta.cycles as f64 / delta.instructions as f64);
        }
        self.sum.accumulate(delta);
    }

    /// Measured intervals recorded so far.
    pub fn intervals(&self) -> u64 {
        self.cpi.len() as u64
    }

    /// Instructions measured so far.
    pub fn measured_insts(&self) -> u64 {
        self.sum.instructions
    }

    /// Cycles charged inside measured windows so far.
    pub fn measured_cycles(&self) -> u64 {
        self.sum.cycles
    }

    /// Scales the measured counter sums to `total_insts` and returns
    /// the estimated whole-run statistics (instructions kept exact)
    /// with the CPI mean/CI. Requires at least one recorded interval.
    pub fn estimate(&self, total_insts: u64) -> (SimStats, f64, f64) {
        let (mean, ci) = mean_ci95(&self.cpi);
        let mut est = self.sum.scaled(total_insts, self.sum.instructions.max(1));
        est.instructions = total_insts;
        (est, mean, ci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_suffixes() {
        let p = SamplingPlan::parse("1M:50k:20k").unwrap();
        assert_eq!((p.period, p.warmup, p.measure), (1_000_000, 50_000, 20_000));
        assert_eq!(p.skip(), 930_000);
        let p = SamplingPlan::parse("1000:0:1000").unwrap();
        assert_eq!((p.period, p.warmup, p.measure), (1000, 0, 1000));
        assert_eq!(p.skip(), 0);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(SamplingPlan::parse("1M:50k").is_err());
        assert!(SamplingPlan::parse("1M:50k:0").is_err());
        assert!(SamplingPlan::parse("100:90:20").is_err());
        assert!(SamplingPlan::parse("x:1:1").is_err());
        assert!(SamplingPlan::parse("1M:1k:2k:3k").is_err());
    }

    #[test]
    fn manifest_and_display_are_suffix_free() {
        let p = SamplingPlan::parse("1M:50k:20k").unwrap();
        assert_eq!(p.manifest(), "sample 1000000:50000:20000");
        assert_eq!(p.to_string(), "1000000:50000:20000");
        // self_check never splits cache keys.
        let mut q = p;
        q.self_check = true;
        assert_eq!(p.manifest(), q.manifest());
    }

    #[test]
    fn ci_math() {
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_ci95(&[2.5]), (2.5, 0.0));
        // Identical samples: zero dispersion.
        let (m, ci) = mean_ci95(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!((m, ci), (2.0, 0.0));
        // Hand-checked: samples 1,3 → mean 2, s = √2, half = 1.96·√(2/2).
        let (m, ci) = mean_ci95(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((ci - 1.96).abs() < 1e-12);
    }

    #[test]
    fn accum_estimates_scale() {
        let mut acc = SampleAccum::default();
        let mut d = SimStats {
            instructions: 100,
            cycles: 200,
            loads: 10,
            ..Default::default()
        };
        d.icache.misses = 4;
        acc.record(&d);
        acc.record(&d);
        let (est, mean, ci) = acc.estimate(2000);
        assert_eq!(est.instructions, 2000);
        assert_eq!(est.cycles, 4000);
        assert_eq!(est.loads, 200);
        assert_eq!(est.icache.misses, 80);
        assert!((mean - 2.0).abs() < 1e-12);
        assert_eq!(ci, 0.0);
    }
}
