#![warn(missing_docs)]

//! # scd-sim — the embedded-processor simulator
//!
//! A cycle-approximate model of the small in-order cores evaluated in the
//! paper (Table II): single- or dual-issue, shallow pipeline, tournament
//! or gshare direction prediction, a branch target buffer with the SCD
//! jump-table-entry overlay, return-address stack, VBBI, L1 I/D caches,
//! TLBs and a flat DRAM latency.
//!
//! ```
//! use scd_isa::{Asm, Reg};
//! use scd_sim::{Machine, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0x1_0000);
//! a.li(Reg::A0, 6);
//! a.slli(Reg::A0, Reg::A0, 3); // 48
//! a.li(Reg::A7, 0);
//! a.ecall(); // halt with code in a0
//! let program = a.finish()?;
//!
//! let mut m = Machine::new(SimConfig::embedded_a5(), &program);
//! let exit = m.run(1_000)?;
//! assert_eq!(exit.code, 48);
//! assert!(m.stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod btb;
pub mod cache;
pub mod config;
pub mod fault;
pub mod ittage;
pub mod lockstep;
pub mod machine;
pub mod mem;
pub mod predictor;
pub mod report;
pub mod sampling;
pub mod snapshot;
pub mod stats;
pub mod tlb;
pub mod trace;

pub use btb::{
    xor_fold, Btb, BtbConfig, BtbKey, BtbOrg, BtbStats, EntryKind, InsertOutcome,
    TwoLevelBtbConfig, TwoLevelStats,
};
pub use cache::{Cache, CacheAccess, CacheConfig, Replacement};
pub use config::{IndirectPredictor, ScdConfig, SimConfig};
pub use fault::{diff_architectural, FaultEvent, FaultKind, FaultPlan};
pub use ittage::Ittage;
pub use lockstep::{LockstepDivergence, LockstepSink};
pub use machine::{
    Annotations, Exit, Machine, Profile, SimError, VbbiHint, WatchdogKind, MAX_BRANCH_IDS,
};
pub use mem::{MemFault, Memory};
pub use predictor::{Direction, DirectionConfig, Ras};
pub use sampling::{mean_ci95, ExecMode, SampleAccum, SampleReport, SamplingPlan};
pub use snapshot::{Snapshot, SnapshotError};
pub use stats::{geomean, AccessCounters, BranchClass, BranchCounters, SimStats};
pub use tlb::Tlb;
pub use trace::{
    diff_stats, downcast_sink, ArchInfo, BopEvent, BopOutcome, BranchEvent, BtbInsertEvent,
    CycleBreakdown, DataAccess, FetchAccess, Inserts, InstClass, JsonlSink, JteFlushEvent,
    L2Access, RedirectCause, RedirectEvent, ReplayStats, RingSink, StatInvariants, TraceEvent,
    TraceSink, VecSink,
};
