//! A small fully-associative TLB model with LRU replacement.
//!
//! The guest runs on an identity mapping (no page tables); the TLB exists
//! purely to charge realistic miss penalties on first touch of each page,
//! as in the paper's gem5 and Rocket configurations (8–10 entries).

const PAGE_SHIFT: u32 = 12;

#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    valid: bool,
    vpn: u64,
    lru: u64,
}

/// Fully-associative translation lookaside buffer.
#[derive(Debug)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    tick: u64,
    /// MRU memo: page and entry index of the most recent access, so the
    /// (overwhelmingly common) same-page streak skips the associative
    /// scan. State-faithful: `tick` and `lru` update exactly as the scan
    /// would, and the memoized entry cannot have been replaced because
    /// every access refreshes the memo. Invalidated by [`Tlb::flush`]
    /// and snapshot restore.
    last_vpn: u64,
    last_idx: usize,
}

impl Tlb {
    /// Creates a TLB with `entries` slots.
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        Tlb { entries: vec![TlbEntry::default(); entries], tick: 0, last_vpn: u64::MAX, last_idx: 0 }
    }

    /// Looks up the page containing `addr`, filling on miss.
    /// Returns `true` on hit.
    ///
    /// The hit scan does nothing but compare tags, so the (vastly more
    /// common) hit path stays branch-light; victim selection is deferred
    /// to a second pass taken only on a miss. Both passes observe the
    /// same entry state, so replacement decisions are unchanged.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let vpn = addr >> PAGE_SHIFT;
        if vpn == self.last_vpn {
            self.entries[self.last_idx].lru = self.tick;
            return true;
        }
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.valid && e.vpn == vpn {
                e.lru = self.tick;
                self.last_vpn = vpn;
                self.last_idx = i;
                return true;
            }
        }
        self.fill(vpn)
    }

    /// Miss path: picks the LRU (or first invalid) victim and fills it.
    #[cold]
    fn fill(&mut self, vpn: u64) -> bool {
        let mut victim = 0;
        let mut best = u64::MAX;
        for (i, e) in self.entries.iter().enumerate() {
            let score = if e.valid { e.lru } else { 0 };
            if score < best {
                best = score;
                victim = i;
            }
        }
        self.entries[victim] = TlbEntry { valid: true, vpn, lru: self.tick };
        self.last_vpn = vpn;
        self.last_idx = victim;
        false
    }

    /// Applies `k` deferred same-page touches to the memo-resident
    /// entry in one step — bit-identical to `k` [`Tlb::access`] calls
    /// on the memoized page (each a hit re-stamping the same entry's
    /// `lru`). Companion to [`crate::cache::Cache::bump_mru`]: an
    /// I-cache line never spans a page, so the machine's fetch streak
    /// covers both structures.
    #[inline]
    pub(crate) fn bump_mru(&mut self, k: u64) {
        debug_assert_ne!(self.last_vpn, u64::MAX, "bump_mru without an armed memo");
        self.tick += k;
        self.entries[self.last_idx].lru = self.tick;
    }

    /// Invalidates all entries.
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
        self.last_vpn = u64::MAX;
    }

    // ---- checkpoint codec (crate::snapshot) ----

    pub(crate) fn snapshot_words(&self, out: &mut Vec<u64>) {
        out.push(self.entries.len() as u64);
        for e in &self.entries {
            out.push(e.valid as u64);
            out.push(e.vpn);
            out.push(e.lru);
        }
        out.push(self.tick);
    }

    pub(crate) fn restore_words(
        &mut self,
        c: &mut crate::snapshot::Cursor,
    ) -> Result<(), crate::SnapshotError> {
        let n = c.next()? as usize;
        crate::snapshot::check(n == self.entries.len(), "snapshot TLB geometry mismatch")?;
        for e in &mut self.entries {
            e.valid = c.next()? != 0;
            e.vpn = c.next()?;
            e.lru = c.next()?;
        }
        self.tick = c.next()?;
        self.last_vpn = u64::MAX;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(2);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ffc));
        assert!(!t.access(0x2000));
        assert!(t.access(0x1004));
    }

    #[test]
    fn lru_replacement() {
        let mut t = Tlb::new(2);
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // 0x2000 becomes LRU
        assert!(!t.access(0x3000)); // evicts 0x2000
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn flush_clears() {
        let mut t = Tlb::new(4);
        t.access(0x1000);
        t.flush();
        assert!(!t.access(0x1000));
    }
}
