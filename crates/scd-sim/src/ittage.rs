//! ITTAGE — the Indirect Target TAGE predictor (Seznec & Michaud),
//! which the paper's related-work section cites as the most accurate
//! indirect-branch predictor. Included as an extra comparison point
//! beyond VBBI: like all history-based predictors it can learn dispatch
//! targets, but it still leaves the dispatcher's redundant computation
//! in place — SCD's actual target.
//!
//! This is a compact implementation: a set of tagged tables indexed by
//! hashes of the PC and geometrically longer slices of the taken-target
//! history, with provider/alternate selection, useful bits and
//! confidence counters.

use crate::predictor::Counter2;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u16,
    target: u64,
    conf: Counter2,
    useful: bool,
}

#[derive(Debug)]
struct Table {
    entries: Vec<Entry>,
    hist_bits: u32,
}

/// The ITTAGE predictor.
#[derive(Debug)]
pub struct Ittage {
    tables: Vec<Table>,
    /// Path/target history: low bits of recent indirect targets.
    history: u128,
    /// Allocation tie-breaker.
    clock: u64,
}

/// Geometric history lengths (in bits of target history).
const HIST_LENGTHS: [u32; 4] = [8, 24, 56, 120];
const TABLE_ENTRIES: usize = 256;

impl Default for Ittage {
    fn default() -> Self {
        Ittage::new()
    }
}

impl Ittage {
    /// Creates an ITTAGE with four 256-entry tagged tables.
    pub fn new() -> Self {
        Ittage {
            tables: HIST_LENGTHS
                .iter()
                .map(|&hist_bits| Table {
                    entries: vec![Entry::default(); TABLE_ENTRIES],
                    hist_bits,
                })
                .collect(),
            history: 0,
            clock: 0,
        }
    }

    fn fold(history: u128, bits: u32) -> u64 {
        let mask = if bits >= 128 { u128::MAX } else { (1u128 << bits) - 1 };
        let mut h = history & mask;
        let mut out = 0u64;
        while h != 0 {
            out ^= (h & 0xFFFF) as u64;
            h >>= 16;
        }
        out
    }

    fn index_tag(&self, ti: usize, pc: u64) -> (usize, u16) {
        let folded = Self::fold(self.history, self.tables[ti].hist_bits);
        // Index and tag use independent mixes so every table spreads a
        // PC's history contexts across its whole set.
        let idx_mix = (pc >> 2) ^ folded ^ (folded >> 7) ^ (ti as u64).wrapping_mul(0x9E37_79B9);
        let index = (idx_mix as usize) & (TABLE_ENTRIES - 1);
        let tag_mix = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ folded.wrapping_mul(0x85EB_CA77_C2B2_AE63 ^ ti as u64);
        let tag = ((tag_mix >> 24) & 0xFFFF) as u16;
        (index, tag)
    }

    /// Longest-history matching entry, if any: (table, index).
    fn provider(&self, pc: u64) -> Option<(usize, usize)> {
        for ti in (0..self.tables.len()).rev() {
            let (idx, tag) = self.index_tag(ti, pc);
            let e = &self.tables[ti].entries[idx];
            if e.valid && e.tag == tag {
                return Some((ti, idx));
            }
        }
        None
    }

    /// Predicts the target of the indirect jump at `pc` (None = no
    /// tagged component hits; fall back to the BTB).
    pub fn predict(&self, pc: u64) -> Option<u64> {
        self.provider(pc).map(|(ti, idx)| self.tables[ti].entries[idx].target)
    }

    /// Trains with the resolved target and advances the history.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.clock += 1;
        let provider = self.provider(pc);
        let correct =
            provider.is_some_and(|(ti, idx)| self.tables[ti].entries[idx].target == target);

        match provider {
            Some((ti, idx)) if correct => {
                let e = &mut self.tables[ti].entries[idx];
                e.conf.update(true);
                e.useful = true;
            }
            Some((ti, idx)) => {
                // Wrong provider: decay confidence; replace the target
                // once confidence is gone; try to allocate a
                // longer-history entry.
                {
                    let e = &mut self.tables[ti].entries[idx];
                    e.conf.update(false);
                    if !e.conf.taken() {
                        e.target = target;
                        e.useful = false;
                    }
                }
                self.allocate(ti + 1, pc, target);
            }
            None => {
                self.allocate(0, pc, target);
            }
        }

        // Target history: fold in a couple of bits mixed from across the
        // taken target's address.
        let bits = ((target >> 2) ^ (target >> 7) ^ (target >> 12)) & 0x3;
        self.history = (self.history << 2) | bits as u128;
    }

    /// Allocates an entry in some table with history >= `from`,
    /// preferring non-useful victims.
    fn allocate(&mut self, from: usize, pc: u64, target: u64) {
        for ti in from..self.tables.len() {
            let (idx, tag) = self.index_tag(ti, pc);
            let e = &mut self.tables[ti].entries[idx];
            if !e.valid || !e.useful || self.clock.is_multiple_of(17) {
                *e = Entry {
                    valid: true,
                    tag,
                    target,
                    conf: Counter2::weakly_taken(),
                    useful: false,
                };
                return;
            }
            // Aging: failed allocation attempts erode usefulness.
            e.useful = false;
        }
    }

    /// Fault hook: corrupts the predictor wholesale — random confidence,
    /// flipped target bits in valid entries, scrambled history. ITTAGE
    /// predictions are verified at execute, so this is timing-only
    /// state.
    pub(crate) fn scramble(&mut self, rng: &mut crate::fault::Rng) {
        for t in &mut self.tables {
            for e in &mut t.entries {
                if e.valid {
                    e.conf = Counter2::from_raw((rng.next() & 3) as u8);
                    e.target ^= rng.next() & 0xFFFC; // keep 4-byte alignment
                    e.useful = rng.next() & 1 != 0;
                }
            }
        }
        self.history ^= ((rng.next() as u128) << 64) | rng.next() as u128;
    }

    // ---- checkpoint codec (crate::snapshot) ----

    pub(crate) fn snapshot_words(&self, out: &mut Vec<u64>) {
        out.push(self.tables.len() as u64);
        for t in &self.tables {
            out.push(t.entries.len() as u64);
            for e in &t.entries {
                out.push(e.valid as u64 | (e.useful as u64) << 1 | (e.conf.raw() as u64) << 2);
                out.push(e.tag as u64);
                out.push(e.target);
            }
        }
        out.push((self.history >> 64) as u64);
        out.push(self.history as u64);
        out.push(self.clock);
    }

    pub(crate) fn restore_words(
        &mut self,
        c: &mut crate::snapshot::Cursor,
    ) -> Result<(), crate::SnapshotError> {
        let nt = c.next()? as usize;
        crate::snapshot::check(nt == self.tables.len(), "snapshot ITTAGE table count mismatch")?;
        for t in &mut self.tables {
            let n = c.next()? as usize;
            crate::snapshot::check(n == t.entries.len(), "snapshot ITTAGE table size mismatch")?;
            for e in &mut t.entries {
                let flags = c.next()?;
                e.valid = flags & 1 != 0;
                e.useful = flags & 2 != 0;
                e.conf = Counter2::from_raw((flags >> 2) as u8);
                e.tag = c.next()? as u16;
                e.target = c.next()?;
            }
        }
        let hi = c.next()? as u128;
        self.history = (hi << 64) | c.next()? as u128;
        self.clock = c.next()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_single_target() {
        let mut p = Ittage::new();
        let pc = 0x1000;
        for _ in 0..8 {
            p.update(pc, 0x2000);
        }
        assert_eq!(p.predict(pc), Some(0x2000));
    }

    #[test]
    fn learns_history_correlated_targets() {
        // A 2-periodic target pattern: plain BTB caps at 50%, ITTAGE
        // should learn it through the target history.
        let mut p = Ittage::new();
        let pc = 0x1000;
        let targets = [0x2000u64, 0x3000];
        let mut correct = 0;
        let mut total = 0;
        for i in 0..4000usize {
            let t = targets[i % 2];
            if i >= 2000 {
                total += 1;
                if p.predict(pc) == Some(t) {
                    correct += 1;
                }
            }
            p.update(pc, t);
        }
        assert!(
            correct * 10 >= total * 8,
            "ITTAGE should learn a periodic pattern: {correct}/{total}"
        );
    }

    #[test]
    fn cold_predicts_none() {
        let p = Ittage::new();
        assert_eq!(p.predict(0x1234), None);
    }

    #[test]
    fn distinct_pcs_do_not_interfere_destructively() {
        // Two monomorphic jumps trained in an interleaved loop: after
        // warm-up, both must predict correctly almost always.
        let mut p = Ittage::new();
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400 {
            for (pc, t) in [(0x1000u64, 0xAAAAu64), (0x2000, 0xBBBB)] {
                if i >= 200 {
                    total += 1;
                    if p.predict(pc) == Some(t) {
                        correct += 1;
                    }
                }
                p.update(pc, t);
            }
        }
        assert!(
            correct * 10 >= total * 9,
            "interleaved monomorphic jumps should predict: {correct}/{total}"
        );
    }

    #[test]
    fn fold_covers_all_history_bits() {
        let h = 1u128 << 100;
        assert_ne!(Ittage::fold(h, 120), 0);
        assert_eq!(Ittage::fold(h, 56), 0); // outside the window
    }
}
