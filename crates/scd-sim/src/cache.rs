//! Set-associative cache tag model (timing only — data lives in
//! [`crate::mem::Memory`]).

/// Replacement policy for caches and the BTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// Round-robin (as in the paper's simulator BTB configuration).
    RoundRobin,
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// A convenience constructor with 64-byte lines and LRU replacement.
    pub fn new(size: u64, ways: usize) -> Self {
        CacheConfig { size, ways, line: 64, replacement: Replacement::Lru }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size / (self.line * self.ways as u64)) as usize
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// The access hit in the cache.
    pub hit: bool,
    /// A dirty line was evicted (write-back traffic).
    pub writeback: bool,
}

/// A set-associative, write-back, write-allocate cache tag array.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    rr_next: Vec<usize>,
    tick: u64,
    line_shift: u32,
    /// MRU memo: block address and absolute line index of the most
    /// recent access. Accesses are strongly streaky (16 sequential
    /// fetches share an I-line; interpreter data reuses a few D-lines),
    /// so a repeat of the last block skips the set scan. Pure fast path:
    /// `tick`, `lru` and `dirty` update exactly as the scan would, and
    /// the memoized line cannot have been evicted because every access
    /// (the only thing that replaces lines) refreshes the memo.
    /// Invalidated by [`Cache::flush`] and snapshot restore.
    last_blk: u64,
    last_idx: usize,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sets/ways, or a line
    /// size that is not a power of two).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.ways > 0, "cache must have at least one way");
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            sets,
            lines: vec![Line::default(); sets * cfg.ways],
            rr_next: vec![0; sets],
            tick: 0,
            line_shift: cfg.line.trailing_zeros(),
            last_blk: u64::MAX,
            last_idx: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let blk = addr >> self.line_shift;
        ((blk as usize) & (self.sets - 1), blk >> self.sets.trailing_zeros())
    }

    /// Performs one access; allocates on miss.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.tick += 1;
        let blk = addr >> self.line_shift;
        if blk == self.last_blk {
            let line = &mut self.lines[self.last_idx];
            line.lru = self.tick;
            line.dirty |= write;
            return CacheAccess { hit: true, writeback: false };
        }
        self.access_slow(addr, blk, write)
    }

    fn access_slow(&mut self, addr: u64, blk: u64, write: bool) -> CacheAccess {
        let (set, tag) = self.index_tag(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];
        for (i, line) in ways.iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= write;
                self.last_blk = blk;
                self.last_idx = base + i;
                return CacheAccess { hit: true, writeback: false };
            }
        }
        // Miss: pick a victim.
        let victim = match self.cfg.replacement {
            Replacement::Lru => {
                let mut v = 0;
                let mut best = u64::MAX;
                for (i, line) in ways.iter().enumerate() {
                    if !line.valid {
                        v = i;
                        break;
                    }
                    if line.lru < best {
                        best = line.lru;
                        v = i;
                    }
                }
                v
            }
            Replacement::RoundRobin => {
                let v = self.rr_next[set];
                self.rr_next[set] = (v + 1) % self.cfg.ways;
                v
            }
        };
        let writeback = ways[victim].valid && ways[victim].dirty;
        ways[victim] = Line { valid: true, dirty: write, tag, lru: self.tick };
        self.last_blk = blk;
        self.last_idx = base + victim;
        CacheAccess { hit: false, writeback }
    }

    /// Block number of `addr` (the memo key used by [`Cache::access`]).
    #[inline]
    pub(crate) fn block_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Applies `k` deferred same-block touches to the memo-resident
    /// line in one step: `tick` advances by `k` and the line becomes
    /// MRU at the final tick — bit-identical to `k` [`Cache::access`]
    /// calls on the memoized block (each of which would hit and only
    /// re-stamp the same line's `lru`). The machine's fetch-streak fast
    /// path batches consecutive same-line fetches through this.
    #[inline]
    pub(crate) fn bump_mru(&mut self, k: u64) {
        debug_assert_ne!(self.last_blk, u64::MAX, "bump_mru without an armed memo");
        self.tick += k;
        self.lines[self.last_idx].lru = self.tick;
    }

    /// Invalidates every line (used by tests, context-switch modeling
    /// and the cache-invalidation fault hook).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
        self.last_blk = u64::MAX;
    }

    // ---- checkpoint codec (crate::snapshot) ----

    pub(crate) fn snapshot_words(&self, out: &mut Vec<u64>) {
        out.push(self.lines.len() as u64);
        for l in &self.lines {
            out.push(l.valid as u64 | (l.dirty as u64) << 1);
            out.push(l.tag);
            out.push(l.lru);
        }
        out.push(self.rr_next.len() as u64);
        out.extend(self.rr_next.iter().map(|&v| v as u64));
        out.push(self.tick);
    }

    pub(crate) fn restore_words(
        &mut self,
        c: &mut crate::snapshot::Cursor,
    ) -> Result<(), crate::SnapshotError> {
        let n = c.next()? as usize;
        crate::snapshot::check(n == self.lines.len(), "snapshot cache geometry mismatch")?;
        for l in &mut self.lines {
            let flags = c.next()?;
            l.valid = flags & 1 != 0;
            l.dirty = flags & 2 != 0;
            l.tag = c.next()?;
            l.lru = c.next()?;
        }
        let nrr = c.next()? as usize;
        crate::snapshot::check(nrr == self.rr_next.len(), "snapshot cache set-count mismatch")?;
        for v in &mut self.rr_next {
            *v = c.next()? as usize;
        }
        self.tick = c.next()?;
        self.last_blk = u64::MAX;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 B
        Cache::new(CacheConfig { size: 256, ways: 2, line: 64, replacement: Replacement::Lru })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x0, false).hit);
        assert!(c.access(0x0, false).hit);
        assert!(c.access(0x3f, false).hit); // same line
        assert!(!c.access(0x40, false).hit); // next line, other set
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with addr bits [6]=0: 0x000, 0x080, 0x100 map to set 0.
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch 0x000, making 0x080 LRU
        assert!(!c.access(0x100, false).hit); // evicts 0x080
        assert!(c.access(0x000, false).hit);
        assert!(!c.access(0x080, false).hit);
    }

    #[test]
    fn dirty_writeback_reported() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let a = c.access(0x100, false); // evicts 0x000 (LRU, dirty)
        assert!(!a.hit);
        assert!(a.writeback);
    }

    #[test]
    fn round_robin_cycles_ways() {
        let mut c = Cache::new(CacheConfig {
            size: 256,
            ways: 2,
            line: 64,
            replacement: Replacement::RoundRobin,
        });
        c.access(0x000, false); // way 0
        c.access(0x080, false); // way 1
        c.access(0x100, false); // way 0 evicted
        assert!(c.access(0x080, false).hit);
        assert!(!c.access(0x000, false).hit);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x0, false);
        c.flush();
        assert!(!c.access(0x0, false).hit);
    }

    #[test]
    fn sets_computed() {
        let cfg = CacheConfig::new(16 * 1024, 2);
        assert_eq!(cfg.sets(), 128);
    }
}
