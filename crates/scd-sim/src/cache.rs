//! Set-associative cache tag model (timing only — data lives in
//! [`crate::mem::Memory`]).

/// Replacement policy for caches and the BTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// Round-robin (as in the paper's simulator BTB configuration).
    RoundRobin,
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// A convenience constructor with 64-byte lines and LRU replacement.
    pub fn new(size: u64, ways: usize) -> Self {
        CacheConfig { size, ways, line: 64, replacement: Replacement::Lru }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size / (self.line * self.ways as u64)) as usize
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// The access hit in the cache.
    pub hit: bool,
    /// A dirty line was evicted (write-back traffic).
    pub writeback: bool,
}

/// A set-associative, write-back, write-allocate cache tag array.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    rr_next: Vec<usize>,
    tick: u64,
    line_shift: u32,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sets/ways, or a line
    /// size that is not a power of two).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.ways > 0, "cache must have at least one way");
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            sets,
            lines: vec![Line::default(); sets * cfg.ways],
            rr_next: vec![0; sets],
            tick: 0,
            line_shift: cfg.line.trailing_zeros(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let blk = addr >> self.line_shift;
        ((blk as usize) & (self.sets - 1), blk >> self.sets.trailing_zeros())
    }

    /// Performs one access; allocates on miss.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.tick += 1;
        let (set, tag) = self.index_tag(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];
        for line in ways.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= write;
                return CacheAccess { hit: true, writeback: false };
            }
        }
        // Miss: pick a victim.
        let victim = match self.cfg.replacement {
            Replacement::Lru => {
                let mut v = 0;
                let mut best = u64::MAX;
                for (i, line) in ways.iter().enumerate() {
                    if !line.valid {
                        v = i;
                        break;
                    }
                    if line.lru < best {
                        best = line.lru;
                        v = i;
                    }
                }
                v
            }
            Replacement::RoundRobin => {
                let v = self.rr_next[set];
                self.rr_next[set] = (v + 1) % self.cfg.ways;
                v
            }
        };
        let writeback = ways[victim].valid && ways[victim].dirty;
        ways[victim] = Line { valid: true, dirty: write, tag, lru: self.tick };
        CacheAccess { hit: false, writeback }
    }

    /// Invalidates every line (used by tests, context-switch modeling
    /// and the cache-invalidation fault hook).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }

    // ---- checkpoint codec (crate::snapshot) ----

    pub(crate) fn snapshot_words(&self, out: &mut Vec<u64>) {
        out.push(self.lines.len() as u64);
        for l in &self.lines {
            out.push(l.valid as u64 | (l.dirty as u64) << 1);
            out.push(l.tag);
            out.push(l.lru);
        }
        out.push(self.rr_next.len() as u64);
        out.extend(self.rr_next.iter().map(|&v| v as u64));
        out.push(self.tick);
    }

    pub(crate) fn restore_words(&mut self, c: &mut crate::snapshot::Cursor) {
        let n = c.next() as usize;
        assert_eq!(n, self.lines.len(), "snapshot cache geometry mismatch");
        for l in &mut self.lines {
            let flags = c.next();
            l.valid = flags & 1 != 0;
            l.dirty = flags & 2 != 0;
            l.tag = c.next();
            l.lru = c.next();
        }
        let nrr = c.next() as usize;
        assert_eq!(nrr, self.rr_next.len(), "snapshot cache set-count mismatch");
        for v in &mut self.rr_next {
            *v = c.next() as usize;
        }
        self.tick = c.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 B
        Cache::new(CacheConfig { size: 256, ways: 2, line: 64, replacement: Replacement::Lru })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x0, false).hit);
        assert!(c.access(0x0, false).hit);
        assert!(c.access(0x3f, false).hit); // same line
        assert!(!c.access(0x40, false).hit); // next line, other set
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with addr bits [6]=0: 0x000, 0x080, 0x100 map to set 0.
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch 0x000, making 0x080 LRU
        assert!(!c.access(0x100, false).hit); // evicts 0x080
        assert!(c.access(0x000, false).hit);
        assert!(!c.access(0x080, false).hit);
    }

    #[test]
    fn dirty_writeback_reported() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let a = c.access(0x100, false); // evicts 0x000 (LRU, dirty)
        assert!(!a.hit);
        assert!(a.writeback);
    }

    #[test]
    fn round_robin_cycles_ways() {
        let mut c = Cache::new(CacheConfig {
            size: 256,
            ways: 2,
            line: 64,
            replacement: Replacement::RoundRobin,
        });
        c.access(0x000, false); // way 0
        c.access(0x080, false); // way 1
        c.access(0x100, false); // way 0 evicted
        assert!(c.access(0x080, false).hit);
        assert!(!c.access(0x000, false).hit);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x0, false);
        c.flush();
        assert!(!c.access(0x0, false).hit);
    }

    #[test]
    fn sets_computed() {
        let cfg = CacheConfig::new(16 * 1024, 2);
        assert_eq!(cfg.sets(), 128);
    }
}
