//! Structured retirement tracing and cross-counter self-checks.
//!
//! The machine can emit one [`TraceEvent`] per retired instruction,
//! carrying everything the timing model charged for it: the cycle
//! delta, fetch- and data-side miss attribution (L1/TLB/L2), branch
//! class and prediction outcome, front-end redirect cause and penalty,
//! `bop` outcome and Rop-wait stall, and every BTB/JTE insert or flush
//! the instruction performed.
//!
//! Two consumers are built in:
//!
//! * [`TraceSink`] implementations receive the live event stream.
//!   [`JsonlSink`] serializes each event as one JSON line (schema in
//!   `EXPERIMENTS.md`); [`VecSink`] buffers events for tests;
//!   [`CycleBreakdown`] aggregates the event stream into the
//!   dispatch-cycle decomposition behind the Fig. 7/10 discussion.
//! * [`StatInvariants`] replays the event stream into a second,
//!   independent [`SimStats`] via [`ReplayStats`] and asserts — every N
//!   instructions — that the replay matches the machine's live counters
//!   field for field, along with the cross-counter identities
//!   (`bop_hits + bop_misses == bop_executed`, cycle monotonicity,
//!   per-class branch counts summing to the total, and the JTE
//!   population identity checked against the BTB itself).
//!
//! The pair is the trustworthiness argument for the paper figures: the
//! per-event attribution and the aggregate counters are produced by
//! different code paths, so an accounting bug in either shows up as a
//! checkpoint panic instead of a silently wrong figure.

use crate::btb::{EntryKind, InsertOutcome};
use crate::fault::{FaultEvent, FaultKind};
use crate::stats::{BranchClass, SimStats};
use scd_isa::Inst;

// ---------------------------------------------------------------------
// Event structure
// ---------------------------------------------------------------------

/// Coarse class of a retired instruction, for attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstClass {
    /// Integer ALU (including `lui`/`auipc` and immediates).
    Alu,
    /// Integer load.
    Load,
    /// Integer store.
    Store,
    /// FP load (`fld`).
    FpLoad,
    /// FP store (`fsd`).
    FpStore,
    /// FP arithmetic, compares and moves.
    Fp,
    /// Conditional branch.
    CondBranch,
    /// Direct jump (`jal`).
    Jal,
    /// Indirect jump (`jalr`).
    Jalr,
    /// Environment call.
    Ecall,
    /// Memory fence.
    Fence,
    /// SCD `setmask`.
    SetMask,
    /// SCD `bop`.
    Bop,
    /// SCD `jru`.
    Jru,
    /// SCD `jte.flush`.
    JteFlush,
    /// SCD `load_op`.
    LoadOp,
    /// Anything else (never retired today; reserved).
    Other,
}

impl InstClass {
    /// Classifies a decoded instruction.
    pub fn of(inst: &Inst) -> Self {
        match inst {
            Inst::Lui { .. } | Inst::Auipc { .. } | Inst::OpImm { .. } | Inst::Op { .. } => {
                InstClass::Alu
            }
            Inst::Jal { .. } => InstClass::Jal,
            Inst::Jalr { .. } => InstClass::Jalr,
            Inst::Branch { .. } => InstClass::CondBranch,
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Fld { .. } => InstClass::FpLoad,
            Inst::Fsd { .. } => InstClass::FpStore,
            Inst::FOp { .. }
            | Inst::FCmp { .. }
            | Inst::FcvtLD { .. }
            | Inst::FcvtDL { .. }
            | Inst::FmvXD { .. }
            | Inst::FmvDX { .. } => InstClass::Fp,
            Inst::Ecall => InstClass::Ecall,
            Inst::Fence => InstClass::Fence,
            Inst::SetMask { .. } => InstClass::SetMask,
            Inst::Bop { .. } => InstClass::Bop,
            Inst::Jru { .. } => InstClass::Jru,
            Inst::JteFlush => InstClass::JteFlush,
            Inst::LoadOp { .. } => InstClass::LoadOp,
            Inst::Ebreak => InstClass::Other,
        }
    }

    /// Wire name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            InstClass::Alu => "alu",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::FpLoad => "fp_load",
            InstClass::FpStore => "fp_store",
            InstClass::Fp => "fp",
            InstClass::CondBranch => "branch",
            InstClass::Jal => "jal",
            InstClass::Jalr => "jalr",
            InstClass::Ecall => "ecall",
            InstClass::Fence => "fence",
            InstClass::SetMask => "setmask",
            InstClass::Bop => "bop",
            InstClass::Jru => "jru",
            InstClass::JteFlush => "jte_flush",
            InstClass::LoadOp => "load_op",
            InstClass::Other => "other",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "alu" => InstClass::Alu,
            "load" => InstClass::Load,
            "store" => InstClass::Store,
            "fp_load" => InstClass::FpLoad,
            "fp_store" => InstClass::FpStore,
            "fp" => InstClass::Fp,
            "branch" => InstClass::CondBranch,
            "jal" => InstClass::Jal,
            "jalr" => InstClass::Jalr,
            "ecall" => InstClass::Ecall,
            "fence" => InstClass::Fence,
            "setmask" => InstClass::SetMask,
            "bop" => InstClass::Bop,
            "jru" => InstClass::Jru,
            "jte_flush" => InstClass::JteFlush,
            "load_op" => InstClass::LoadOp,
            "other" => InstClass::Other,
            _ => return None,
        })
    }

    /// Whether this class performs exactly one data-memory access.
    pub fn is_load(self) -> bool {
        matches!(self, InstClass::Load | InstClass::FpLoad | InstClass::LoadOp)
    }

    /// Whether this class performs exactly one data-memory write.
    pub fn is_store(self) -> bool {
        matches!(self, InstClass::Store | InstClass::FpStore)
    }
}

/// L2 outcome under an L1 miss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2Access {
    /// The L2 also missed (DRAM was charged).
    pub miss: bool,
    /// A dirty L2 line was written back.
    pub writeback: bool,
}

/// Instruction-fetch attribution for one retirement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchAccess {
    /// The I-TLB missed.
    pub itlb_miss: bool,
    /// The I-cache missed.
    pub icache_miss: bool,
    /// L2 outcome, when the I-cache missed and an L2 is configured.
    pub l2: Option<L2Access>,
    /// Cycles charged for fetch-side misses.
    pub penalty: u64,
}

impl FetchAccess {
    fn is_default(&self) -> bool {
        *self == FetchAccess::default()
    }
}

/// Data-side attribution for one retirement (present only when misses
/// or writebacks occurred; the access itself is implied by the class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataAccess {
    /// The D-TLB missed.
    pub dtlb_miss: bool,
    /// The D-cache missed.
    pub dcache_miss: bool,
    /// A dirty D-cache line was written back.
    pub writeback: bool,
    /// L2 outcome, when the D-cache missed and an L2 is configured.
    pub l2: Option<L2Access>,
    /// Cycles charged for data-side misses.
    pub penalty: u64,
}

impl DataAccess {
    pub(crate) fn is_default(&self) -> bool {
        *self == DataAccess::default()
    }
}

/// Branch retirement outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// The branch class.
    pub class: BranchClass,
    /// Whether the front end mispredicted it.
    pub mispredicted: bool,
}

/// Why the front end was redirected at this instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirectCause {
    /// `jal` whose target was not in the BTB (decode redirect).
    JalMiss,
    /// Conditional branch mispredicted.
    CondMispredict,
    /// Indirect jump (or return) mispredicted.
    IndirectMispredict,
    /// `bop` short-circuit hit (charges the configured bubbles).
    BopHit,
}

impl RedirectCause {
    fn name(self) -> &'static str {
        match self {
            RedirectCause::JalMiss => "jal_miss",
            RedirectCause::CondMispredict => "cond_mispredict",
            RedirectCause::IndirectMispredict => "indirect_mispredict",
            RedirectCause::BopHit => "bop_hit",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "jal_miss" => RedirectCause::JalMiss,
            "cond_mispredict" => RedirectCause::CondMispredict,
            "indirect_mispredict" => RedirectCause::IndirectMispredict,
            "bop_hit" => RedirectCause::BopHit,
            _ => return None,
        })
    }
}

/// A front-end redirect charged at this instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedirectEvent {
    /// What caused it.
    pub cause: RedirectCause,
    /// Cycles charged (may be zero, e.g. zero-bubble `bop` hits).
    pub penalty: u64,
}

/// Outcome of one `bop` execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BopOutcome {
    /// Short-circuited through a JTE hit.
    Hit,
    /// Rop was valid but the JTE lookup missed (slow path follows).
    JteMiss,
    /// Rop was not valid (no `load_op` since the last consume/flush).
    RopInvalid,
    /// Fall-through scheme: Rop was not yet available at fetch.
    NotReady,
    /// SCD disabled in this configuration.
    Disabled,
}

impl BopOutcome {
    fn name(self) -> &'static str {
        match self {
            BopOutcome::Hit => "hit",
            BopOutcome::JteMiss => "jte_miss",
            BopOutcome::RopInvalid => "rop_invalid",
            BopOutcome::NotReady => "not_ready",
            BopOutcome::Disabled => "disabled",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "hit" => BopOutcome::Hit,
            "jte_miss" => BopOutcome::JteMiss,
            "rop_invalid" => BopOutcome::RopInvalid,
            "not_ready" => BopOutcome::NotReady,
            "disabled" => BopOutcome::Disabled,
            _ => return None,
        })
    }
}

/// `bop` retirement details.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BopEvent {
    /// What the short-circuit attempt did.
    pub outcome: BopOutcome,
    /// Cycles stalled waiting for Rop (stall scheme only).
    pub stall: u64,
}

/// One BTB insert performed by this instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbInsertEvent {
    /// Key space of the inserted entry.
    pub key: EntryKind,
    /// What the BTB did with it.
    pub outcome: InsertOutcome,
}

/// Up to two BTB inserts for one retirement (a `jru` can install a JTE
/// and train the indirect predictor in the same instruction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Inserts {
    slots: [Option<BtbInsertEvent>; 2],
}

impl Inserts {
    pub(crate) fn push(&mut self, ev: BtbInsertEvent) {
        for s in &mut self.slots {
            if s.is_none() {
                *s = Some(ev);
                return;
            }
        }
        debug_assert!(false, "more than two BTB inserts in one retirement");
    }

    /// Iterates the recorded inserts in order.
    pub fn iter(&self) -> impl Iterator<Item = &BtbInsertEvent> {
        self.slots.iter().flatten()
    }

    /// True when no insert was recorded.
    pub fn is_empty(&self) -> bool {
        self.slots[0].is_none()
    }
}

/// JTE flushes performed at this instruction (the periodic context-switch
/// flush and an explicit `jte.flush` can coincide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JteFlushEvent {
    /// Number of flush operations.
    pub flushes: u64,
    /// Total JTE entries invalidated by them.
    pub flushed: u64,
}

/// The architectural side of one retirement: what the instruction
/// *computed*, as opposed to what it *cost*. This is the per-instruction
/// contract the lockstep oracle (`scd-sim::lockstep`, backed by the
/// `scd-ref` reference ISS) checks against the shared
/// [`scd_isa::exec`] semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchInfo {
    /// Integer writeback: (register index, value after execute). Present
    /// for any class that defines an x-register; writes to `x0` report
    /// value 0.
    pub wx: Option<(u8, u64)>,
    /// FP writeback: (register index, raw bits after execute).
    pub wf: Option<(u8, u64)>,
    /// Effective address of a load, store or `<load>.op`.
    pub ea: Option<u64>,
    /// Store data, truncated to the access width.
    pub store: Option<u64>,
    /// Where fetch goes next after this retirement (for the final,
    /// halting retirement: the fall-through PC).
    pub next_pc: u64,
}

/// Everything the timing model charged for one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Retirement index, starting at 0.
    pub seq: u64,
    /// PC of the instruction.
    pub pc: u64,
    /// Coarse instruction class.
    pub class: InstClass,
    /// Machine cycle after this retirement.
    pub cycle: u64,
    /// Cycles attributed to this instruction (delta from the previous
    /// retirement; 0 when dual-issued into an existing slot).
    pub cycles: u64,
    /// Whether the PC lies in a registered dispatcher range.
    pub dispatch: bool,
    /// Fetch-side miss attribution.
    pub fetch: FetchAccess,
    /// Data-side miss attribution (None when no miss/writeback; the
    /// access itself is implied by the class).
    pub data: Option<DataAccess>,
    /// Branch outcome, for branch-class instructions.
    pub branch: Option<BranchEvent>,
    /// Front-end redirect charged here.
    pub redirect: Option<RedirectEvent>,
    /// `bop` details (present exactly when `class == Bop`).
    pub bop: Option<BopEvent>,
    /// BTB/JTE inserts performed.
    pub inserts: Inserts,
    /// JTE flushes performed.
    pub flush: Option<JteFlushEvent>,
    /// Micro-architectural fault injected before this instruction (by a
    /// [`crate::FaultPlan`]). Carries the number of JTEs it evicted so
    /// replayed statistics stay balanced.
    pub fault: Option<FaultEvent>,
    /// Architectural retirement record (always captured by the machine;
    /// `None` only in hand-built or legacy events). Ignored by the
    /// statistics replay — no counter derives from it.
    pub arch: Option<ArchInfo>,
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Receives the retirement event stream from a [`crate::Machine`].
///
/// Sinks are `Send` so a machine (which owns its sink) can run on a
/// worker thread, and `Any` so a concrete sink handed to
/// [`crate::Machine::set_trace_sink`] can be recovered — with its
/// accumulated state — via [`crate::Machine::take_trace_sink`] plus
/// [`downcast_sink`] after the run. This replaces the old
/// `Rc<RefCell<...>>` sharing, which pinned every traced run to one
/// thread.
pub trait TraceSink: Send + std::any::Any {
    /// Called once per retired instruction, in retirement order.
    fn event(&mut self, ev: &TraceEvent);

    /// Called when the run completes (halt or instruction limit); flush
    /// buffered output here.
    fn finish(&mut self) {}
}

/// Recovers the concrete sink behind a [`Machine`](crate::Machine)'s
/// boxed [`TraceSink`], typically straight out of
/// [`take_trace_sink`](crate::Machine::take_trace_sink):
///
/// ```
/// # use scd_sim::{downcast_sink, CycleBreakdown, TraceSink};
/// let boxed: Box<dyn TraceSink> = Box::new(CycleBreakdown::default());
/// let breakdown: Box<CycleBreakdown> = downcast_sink(boxed).unwrap();
/// # let _ = breakdown;
/// ```
///
/// Returns `None` when the sink is some other type (the boxed sink is
/// consumed either way — misidentifying a sink is a caller bug, not a
/// state to recover from).
pub fn downcast_sink<T: TraceSink>(sink: Box<dyn TraceSink>) -> Option<Box<T>> {
    let any: Box<dyn std::any::Any> = sink;
    any.downcast::<T>().ok()
}

/// Buffers every event in memory; for tests and small runs.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The collected events.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// Keeps only the most recent `cap` events — a bounded window for
/// post-mortem dumps. The fault-injection differential guard installs
/// one on the faulted run so a divergence can dump the trace tail
/// without paying for a full-run trace.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: std::collections::VecDeque<TraceEvent>,
}

impl RingSink {
    /// Creates a ring buffer holding at most `cap` events.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "RingSink needs a nonzero capacity");
        RingSink { cap, buf: std::collections::VecDeque::with_capacity(cap) }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of buffered events (at most the capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been buffered yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Serializes the window as JSONL, oldest event first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.buf {
            ev.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingSink {
    fn event(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(*ev);
    }
}

/// Writes one JSON object per event, one per line (the `--trace` format;
/// schema documented in `EXPERIMENTS.md`).
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    w: W,
    line: String,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    ///
    /// # Errors
    /// Propagates the `File::create` error.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w, line: String::with_capacity(256) }
    }
}

impl<W: std::io::Write + Send + 'static> TraceSink for JsonlSink<W> {
    fn event(&mut self, ev: &TraceEvent) {
        self.line.clear();
        ev.write_json(&mut self.line);
        self.line.push('\n');
        self.w.write_all(self.line.as_bytes()).expect("trace write failed");
    }

    fn finish(&mut self) {
        self.w.flush().expect("trace flush failed");
    }
}

// ---------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------

fn kind_name(k: EntryKind) -> &'static str {
    match k {
        EntryKind::Pc => "pc",
        EntryKind::Jte => "jte",
        EntryKind::Vbbi => "vbbi",
    }
}

fn kind_from_name(s: &str) -> Option<EntryKind> {
    Some(match s {
        "pc" => EntryKind::Pc,
        "jte" => EntryKind::Jte,
        "vbbi" => EntryKind::Vbbi,
        _ => return None,
    })
}

fn branch_class_name(c: BranchClass) -> &'static str {
    match c {
        BranchClass::Conditional => "cond",
        BranchClass::Direct => "direct",
        BranchClass::Return => "ret",
        BranchClass::IndirectDispatch => "ind_dispatch",
        BranchClass::IndirectOther => "ind_other",
    }
}

fn branch_class_from_name(s: &str) -> Option<BranchClass> {
    Some(match s {
        "cond" => BranchClass::Conditional,
        "direct" => BranchClass::Direct,
        "ret" => BranchClass::Return,
        "ind_dispatch" => BranchClass::IndirectDispatch,
        "ind_other" => BranchClass::IndirectOther,
        _ => return None,
    })
}

impl TraceEvent {
    /// Appends the one-line JSON encoding of this event to `out`.
    /// Optional sub-objects and false/zero flags are omitted.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"seq\":{},\"pc\":{},\"class\":\"{}\",\"cycle\":{},\"cycles\":{}",
            self.seq,
            self.pc,
            self.class.name(),
            self.cycle,
            self.cycles
        );
        if self.dispatch {
            out.push_str(",\"dispatch\":true");
        }
        if !self.fetch.is_default() {
            out.push_str(",\"fetch\":{");
            let mut first = true;
            json_flag(out, &mut first, "itlb_miss", self.fetch.itlb_miss);
            json_flag(out, &mut first, "icache_miss", self.fetch.icache_miss);
            json_l2(out, &mut first, self.fetch.l2);
            json_num(out, &mut first, "penalty", self.fetch.penalty);
            out.push('}');
        }
        if let Some(d) = &self.data {
            out.push_str(",\"data\":{");
            let mut first = true;
            json_flag(out, &mut first, "dtlb_miss", d.dtlb_miss);
            json_flag(out, &mut first, "dcache_miss", d.dcache_miss);
            json_flag(out, &mut first, "writeback", d.writeback);
            json_l2(out, &mut first, d.l2);
            json_num(out, &mut first, "penalty", d.penalty);
            out.push('}');
        }
        if let Some(b) = &self.branch {
            let _ = write!(
                out,
                ",\"branch\":{{\"class\":\"{}\",\"mispredicted\":{}}}",
                branch_class_name(b.class),
                b.mispredicted
            );
        }
        if let Some(r) = &self.redirect {
            let _ = write!(
                out,
                ",\"redirect\":{{\"cause\":\"{}\",\"penalty\":{}}}",
                r.cause.name(),
                r.penalty
            );
        }
        if let Some(b) = &self.bop {
            let _ = write!(
                out,
                ",\"bop\":{{\"outcome\":\"{}\",\"stall\":{}}}",
                b.outcome.name(),
                b.stall
            );
        }
        if !self.inserts.is_empty() {
            out.push_str(",\"inserts\":[");
            for (i, ins) in self.inserts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"key\":\"{}\",", kind_name(ins.key));
                match ins.outcome {
                    InsertOutcome::Updated => out.push_str("\"outcome\":\"updated\"}"),
                    InsertOutcome::CapSkipped => out.push_str("\"outcome\":\"cap_skipped\"}"),
                    InsertOutcome::Blocked => out.push_str("\"outcome\":\"blocked\"}"),
                    InsertOutcome::Inserted { evicted, remote_jte_evicted } => {
                        out.push_str("\"outcome\":\"inserted\"");
                        if let Some(k) = evicted {
                            let _ = write!(out, ",\"evicted\":\"{}\"", kind_name(k));
                        }
                        if remote_jte_evicted {
                            out.push_str(",\"remote_jte_evicted\":true");
                        }
                        out.push('}');
                    }
                }
            }
            out.push(']');
        }
        if let Some(f) = &self.flush {
            let _ =
                write!(out, ",\"flush\":{{\"flushes\":{},\"flushed\":{}}}", f.flushes, f.flushed);
        }
        if let Some(ft) = &self.fault {
            let _ = write!(out, ",\"fault\":{{\"kind\":\"{}\"", ft.kind.name());
            if ft.evicted != 0 {
                let _ = write!(out, ",\"evicted\":{}", ft.evicted);
            }
            out.push('}');
        }
        if let Some(a) = &self.arch {
            // Values here can legitimately be 0, so presence is encoded
            // by the key, never elided like the flag helpers do.
            let _ = write!(out, ",\"arch\":{{\"next_pc\":{}", a.next_pc);
            if let Some((r, v)) = a.wx {
                let _ = write!(out, ",\"wx_r\":{r},\"wx_v\":{v}");
            }
            if let Some((r, v)) = a.wf {
                let _ = write!(out, ",\"wf_r\":{r},\"wf_v\":{v}");
            }
            if let Some(ea) = a.ea {
                let _ = write!(out, ",\"ea\":{ea}");
            }
            if let Some(st) = a.store {
                let _ = write!(out, ",\"store\":{st}");
            }
            out.push('}');
        }
        out.push('}');
    }

    /// The one-line JSON encoding of this event.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        self.write_json(&mut s);
        s
    }

    /// Parses an event from its JSONL line.
    ///
    /// # Errors
    /// Returns a description of the first syntactic or schema problem.
    pub fn from_json(line: &str) -> Result<TraceEvent, String> {
        let v = json::parse(line)?;
        let obj = v.as_obj().ok_or("event must be a JSON object")?;
        let class_name = get_str(obj, "class")?;
        let class = InstClass::from_name(class_name)
            .ok_or_else(|| format!("unknown class {class_name:?}"))?;
        let mut ev = TraceEvent {
            seq: get_num(obj, "seq")?,
            pc: get_num(obj, "pc")?,
            class,
            cycle: get_num(obj, "cycle")?,
            cycles: get_num(obj, "cycles")?,
            dispatch: get(obj, "dispatch").map_or(Ok(false), json::Value::as_bool_or_err)?,
            fetch: FetchAccess::default(),
            data: None,
            branch: None,
            redirect: None,
            bop: None,
            inserts: Inserts::default(),
            flush: None,
            fault: None,
            arch: None,
        };
        if let Some(f) = get(obj, "fetch") {
            let f = f.as_obj().ok_or("fetch must be an object")?;
            ev.fetch = FetchAccess {
                itlb_miss: get_flag(f, "itlb_miss")?,
                icache_miss: get_flag(f, "icache_miss")?,
                l2: get_l2(f)?,
                penalty: get_num_or_zero(f, "penalty")?,
            };
        }
        if let Some(d) = get(obj, "data") {
            let d = d.as_obj().ok_or("data must be an object")?;
            ev.data = Some(DataAccess {
                dtlb_miss: get_flag(d, "dtlb_miss")?,
                dcache_miss: get_flag(d, "dcache_miss")?,
                writeback: get_flag(d, "writeback")?,
                l2: get_l2(d)?,
                penalty: get_num_or_zero(d, "penalty")?,
            });
        }
        if let Some(b) = get(obj, "branch") {
            let b = b.as_obj().ok_or("branch must be an object")?;
            let name = get_str(b, "class")?;
            ev.branch = Some(BranchEvent {
                class: branch_class_from_name(name)
                    .ok_or_else(|| format!("unknown branch class {name:?}"))?,
                mispredicted: get_flag(b, "mispredicted")?,
            });
        }
        if let Some(r) = get(obj, "redirect") {
            let r = r.as_obj().ok_or("redirect must be an object")?;
            let name = get_str(r, "cause")?;
            ev.redirect = Some(RedirectEvent {
                cause: RedirectCause::from_name(name)
                    .ok_or_else(|| format!("unknown redirect cause {name:?}"))?,
                penalty: get_num_or_zero(r, "penalty")?,
            });
        }
        if let Some(b) = get(obj, "bop") {
            let b = b.as_obj().ok_or("bop must be an object")?;
            let name = get_str(b, "outcome")?;
            ev.bop = Some(BopEvent {
                outcome: BopOutcome::from_name(name)
                    .ok_or_else(|| format!("unknown bop outcome {name:?}"))?,
                stall: get_num_or_zero(b, "stall")?,
            });
        }
        if let Some(list) = get(obj, "inserts") {
            let list = list.as_arr().ok_or("inserts must be an array")?;
            for item in list {
                let item = item.as_obj().ok_or("insert must be an object")?;
                let key = get_str(item, "key")?;
                let key = kind_from_name(key).ok_or_else(|| format!("unknown key {key:?}"))?;
                let outcome = match get_str(item, "outcome")? {
                    "updated" => InsertOutcome::Updated,
                    "cap_skipped" => InsertOutcome::CapSkipped,
                    "blocked" => InsertOutcome::Blocked,
                    "inserted" => InsertOutcome::Inserted {
                        evicted: match get(item, "evicted") {
                            Some(v) => {
                                let name = v.as_str().ok_or("evicted must be a string")?;
                                Some(
                                    kind_from_name(name)
                                        .ok_or_else(|| format!("unknown evicted kind {name:?}"))?,
                                )
                            }
                            None => None,
                        },
                        remote_jte_evicted: get_flag(item, "remote_jte_evicted")?,
                    },
                    other => return Err(format!("unknown insert outcome {other:?}")),
                };
                ev.inserts.push(BtbInsertEvent { key, outcome });
            }
        }
        if let Some(f) = get(obj, "flush") {
            let f = f.as_obj().ok_or("flush must be an object")?;
            ev.flush = Some(JteFlushEvent {
                flushes: get_num(f, "flushes")?,
                flushed: get_num(f, "flushed")?,
            });
        }
        if let Some(ft) = get(obj, "fault") {
            let ft = ft.as_obj().ok_or("fault must be an object")?;
            let name = get_str(ft, "kind")?;
            ev.fault = Some(FaultEvent {
                kind: FaultKind::from_name(name)
                    .ok_or_else(|| format!("unknown fault kind {name:?}"))?,
                evicted: get_num_or_zero(ft, "evicted")?,
            });
        }
        if let Some(a) = get(obj, "arch") {
            let a = a.as_obj().ok_or("arch must be an object")?;
            let pair = |rk: &str, vk: &str| -> Result<Option<(u8, u64)>, String> {
                match get_opt_num(a, rk)? {
                    None => Ok(None),
                    Some(r) => {
                        let r = u8::try_from(r)
                            .map_err(|_| format!("field {rk:?} out of register range"))?;
                        Ok(Some((r, get_num(a, vk)?)))
                    }
                }
            };
            ev.arch = Some(ArchInfo {
                wx: pair("wx_r", "wx_v")?,
                wf: pair("wf_r", "wf_v")?,
                ea: get_opt_num(a, "ea")?,
                store: get_opt_num(a, "store")?,
                next_pc: get_num(a, "next_pc")?,
            });
        }
        Ok(ev)
    }
}

fn json_flag(out: &mut String, first: &mut bool, name: &str, v: bool) {
    if v {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('"');
        out.push_str(name);
        out.push_str("\":true");
    }
}

fn json_num(out: &mut String, first: &mut bool, name: &str, v: u64) {
    use std::fmt::Write as _;
    if v != 0 {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(out, "\"{name}\":{v}");
    }
}

fn json_l2(out: &mut String, first: &mut bool, l2: Option<L2Access>) {
    if let Some(l2) = l2 {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\"l2\":{");
        let mut inner_first = true;
        json_flag(out, &mut inner_first, "miss", l2.miss);
        json_flag(out, &mut inner_first, "writeback", l2.writeback);
        out.push('}');
    }
}

type Obj = [(String, json::Value)];

fn get<'a>(obj: &'a Obj, name: &str) -> Option<&'a json::Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn get_num(obj: &Obj, name: &str) -> Result<u64, String> {
    get(obj, name)
        .ok_or_else(|| format!("missing field {name:?}"))?
        .as_num()
        .ok_or_else(|| format!("field {name:?} must be a number"))
}

fn get_num_or_zero(obj: &Obj, name: &str) -> Result<u64, String> {
    match get(obj, name) {
        None => Ok(0),
        Some(v) => v.as_num().ok_or_else(|| format!("field {name:?} must be a number")),
    }
}

fn get_opt_num(obj: &Obj, name: &str) -> Result<Option<u64>, String> {
    match get(obj, name) {
        None => Ok(None),
        Some(v) => {
            v.as_num().map(Some).ok_or_else(|| format!("field {name:?} must be a number"))
        }
    }
}

fn get_flag(obj: &Obj, name: &str) -> Result<bool, String> {
    match get(obj, name) {
        None => Ok(false),
        Some(v) => v.as_bool().ok_or_else(|| format!("field {name:?} must be a bool")),
    }
}

fn get_str<'a>(obj: &'a Obj, name: &str) -> Result<&'a str, String> {
    get(obj, name)
        .ok_or_else(|| format!("missing field {name:?}"))?
        .as_str()
        .ok_or_else(|| format!("field {name:?} must be a string"))
}

fn get_l2(obj: &Obj) -> Result<Option<L2Access>, String> {
    match get(obj, "l2") {
        None => Ok(None),
        Some(v) => {
            let o = v.as_obj().ok_or("l2 must be an object")?;
            Ok(Some(L2Access { miss: get_flag(o, "miss")?, writeback: get_flag(o, "writeback")? }))
        }
    }
}

/// Minimal JSON reader for the trace schema: objects, arrays, strings
/// without escapes beyond `\"` and `\\`, unsigned integers, booleans and
/// null. Not a general-purpose parser.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Unsigned integer (the only numbers the schema uses).
        Num(u64),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_num(&self) -> Option<u64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_bool_or_err(&self) -> Result<bool, String> {
            self.as_bool().ok_or_else(|| "expected a bool".to_string())
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = match value(b, pos)? {
                        Value::Str(s) => s,
                        _ => return Err(format!("object key must be a string at byte {pos}")),
                    };
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(format!("expected ':' at byte {pos}"));
                    }
                    *pos += 1;
                    fields.push((key, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => {
                *pos += 1;
                let mut s = String::new();
                loop {
                    match b.get(*pos) {
                        None => return Err("unterminated string".into()),
                        Some(b'"') => {
                            *pos += 1;
                            return Ok(Value::Str(s));
                        }
                        Some(b'\\') => {
                            *pos += 1;
                            match b.get(*pos) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => return Err(format!("unsupported escape at byte {pos}")),
                            }
                            *pos += 1;
                        }
                        Some(&c) => {
                            s.push(c as char);
                            *pos += 1;
                        }
                    }
                }
            }
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *pos;
                while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                    *pos += 1;
                }
                std::str::from_utf8(&b[start..*pos])
                    .unwrap()
                    .parse()
                    .map(Value::Num)
                    .map_err(|e| format!("bad number at byte {start}: {e}"))
            }
            Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
        }
    }
}

// ---------------------------------------------------------------------
// Replay + invariants
// ---------------------------------------------------------------------

/// Rebuilds a [`SimStats`] from the event stream alone. Feeding it every
/// event of a run must reproduce the machine's own counters exactly —
/// that equivalence is what [`StatInvariants`] asserts and what the
/// JSONL round-trip test checks end to end.
#[derive(Debug, Default)]
pub struct ReplayStats {
    stats: SimStats,
    next_seq: u64,
    last_cycle: u64,
}

impl ReplayStats {
    /// Folds one event into the replayed statistics.
    ///
    /// # Panics
    /// Panics when the stream is out of order or the per-event cycle
    /// delta disagrees with the running cycle count (cycle
    /// monotonicity).
    pub fn observe(&mut self, ev: &TraceEvent) {
        assert_eq!(ev.seq, self.next_seq, "trace events out of order");
        self.next_seq += 1;
        assert!(
            ev.cycle >= self.last_cycle,
            "cycle count regressed at seq {}: {} -> {}",
            ev.seq,
            self.last_cycle,
            ev.cycle
        );
        assert_eq!(
            ev.cycles,
            ev.cycle - self.last_cycle,
            "seq {}: cycle delta disagrees with the running cycle count",
            ev.seq
        );
        self.last_cycle = ev.cycle;

        let s = &mut self.stats;
        s.instructions += 1;
        if ev.dispatch {
            s.dispatch_instructions += 1;
        }
        if ev.class.is_load() {
            s.loads += 1;
        }
        if ev.class.is_store() {
            s.stores += 1;
        }

        s.itlb.accesses += 1;
        s.itlb.misses += ev.fetch.itlb_miss as u64;
        s.icache.accesses += 1;
        s.icache.misses += ev.fetch.icache_miss as u64;
        if let Some(l2) = ev.fetch.l2 {
            s.l2.accesses += 1;
            s.l2.misses += l2.miss as u64;
            s.l2.writebacks += l2.writeback as u64;
        }
        if ev.class.is_load() || ev.class.is_store() {
            let d = ev.data.unwrap_or_default();
            s.dtlb.accesses += 1;
            s.dtlb.misses += d.dtlb_miss as u64;
            s.dcache.accesses += 1;
            s.dcache.misses += d.dcache_miss as u64;
            s.dcache.writebacks += d.writeback as u64;
            if let Some(l2) = d.l2 {
                s.l2.accesses += 1;
                s.l2.misses += l2.miss as u64;
                s.l2.writebacks += l2.writeback as u64;
            }
        }

        if let Some(b) = ev.branch {
            s.record_branch(b.class, b.mispredicted);
        }

        if ev.class == InstClass::Bop {
            let b = ev.bop.expect("bop retirement must carry a bop event");
            s.bop_executed += 1;
            if b.outcome == BopOutcome::Hit {
                s.bop_hits += 1;
            } else {
                s.bop_misses += 1;
            }
            s.bop_stall_cycles += b.stall;
        }
        if ev.class == InstClass::Jru {
            s.jru_executed += 1;
        }

        for ins in ev.inserts.iter() {
            let b = &mut s.btb;
            if ins.key == EntryKind::Jte {
                match ins.outcome {
                    InsertOutcome::Updated => {}
                    InsertOutcome::CapSkipped => b.jte_cap_skips += 1,
                    InsertOutcome::Blocked => {
                        panic!("seq {}: a JTE insert can never be blocked", ev.seq)
                    }
                    InsertOutcome::Inserted { evicted, remote_jte_evicted } => {
                        b.jte_inserts += 1;
                        match evicted {
                            Some(EntryKind::Jte) => b.jte_evictions += 1,
                            Some(_) => b.btb_evicted_by_jte += 1,
                            None => {}
                        }
                        b.jte_evictions += remote_jte_evicted as u64;
                    }
                }
            } else {
                match ins.outcome {
                    InsertOutcome::Blocked => b.btb_blocked_by_jte += 1,
                    InsertOutcome::Inserted { evicted, .. } => {
                        assert_ne!(
                            evicted,
                            Some(EntryKind::Jte),
                            "seq {}: a non-JTE insert can never evict a JTE",
                            ev.seq
                        );
                    }
                    _ => {}
                }
            }
        }
        if let Some(f) = ev.flush {
            s.btb.jte_flushes += f.flushes;
            s.btb.jte_flushed += f.flushed;
        }
        // Injected faults account their JTE losses as evictions, keeping
        // the resident-population identity balanced.
        if let Some(ft) = ev.fault {
            s.btb.jte_evictions += ft.evicted;
        }
    }

    /// The replayed statistics so far (`cycles` set from the last event).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.cycles = self.last_cycle;
        s
    }

    /// Number of events folded in.
    pub fn events(&self) -> u64 {
        self.next_seq
    }
}

/// Describes the first field on which two [`SimStats`] differ, or `None`
/// when they are identical. Used for readable invariant-failure panics.
pub fn diff_stats(live: &SimStats, replay: &SimStats) -> Option<String> {
    macro_rules! cmp {
        ($($field:ident $(. $sub:ident)?),+ $(,)?) => {
            $(
                {
                    let a = live.$field $(. $sub)?;
                    let b = replay.$field $(. $sub)?;
                    if a != b {
                        return Some(format!(
                            concat!(stringify!($field), $("." , stringify!($sub),)? ": live {} vs replay {}"),
                            a, b
                        ));
                    }
                }
            )+
        };
    }
    cmp!(
        cycles,
        instructions,
        dispatch_instructions,
        loads,
        stores,
        cond.executed,
        cond.mispredicted,
        direct.executed,
        direct.mispredicted,
        ret.executed,
        ret.mispredicted,
        indirect_dispatch.executed,
        indirect_dispatch.mispredicted,
        indirect_other.executed,
        indirect_other.mispredicted,
        bop_executed,
        bop_hits,
        bop_misses,
        bop_stall_cycles,
        jru_executed,
        icache.accesses,
        icache.misses,
        icache.writebacks,
        dcache.accesses,
        dcache.misses,
        dcache.writebacks,
        l2.accesses,
        l2.misses,
        l2.writebacks,
        itlb.accesses,
        itlb.misses,
        dtlb.accesses,
        dtlb.misses,
    );
    if live.btb != replay.btb {
        return Some(format!("btb: live {:?} vs replay {:?}", live.btb, replay.btb));
    }
    None
}

/// Debug-mode cross-counter checker: replays the event stream and
/// asserts, every `every` retirements, that the replay matches the
/// machine's live counters and that the cross-counter identities hold.
#[derive(Debug)]
pub struct StatInvariants {
    every: u64,
    replay: ReplayStats,
}

impl StatInvariants {
    /// Checks at every multiple of `every` retired instructions (and at
    /// exit).
    pub fn new(every: u64) -> Self {
        StatInvariants { every: every.max(1), replay: ReplayStats::default() }
    }

    /// Folds one event into the shadow statistics.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.replay.observe(ev);
    }

    /// Whether a checkpoint is due after `instructions` retirements.
    pub fn due(&self, instructions: u64) -> bool {
        instructions.is_multiple_of(self.every)
    }

    /// Asserts every invariant against the machine's live state.
    /// `live` must carry the current cycle count and merged BTB stats;
    /// `resident_jtes` is the BTB's (plus any dedicated table's) current
    /// JTE population.
    ///
    /// # Panics
    /// Panics with the first violated identity.
    pub fn check(&self, live: &SimStats, resident_jtes: u64) {
        let replay = self.replay.stats();
        if let Some(d) = diff_stats(live, &replay) {
            panic!("stat invariant violated after {} instructions: {d}", live.instructions);
        }
        assert_eq!(
            live.bop_hits + live.bop_misses,
            live.bop_executed,
            "bop_hits + bop_misses != bop_executed"
        );
        let per_class = live.cond.executed
            + live.direct.executed
            + live.ret.executed
            + live.indirect_dispatch.executed
            + live.indirect_other.executed;
        let per_class_miss = live.total_mispredictions();
        assert!(
            per_class_miss <= per_class,
            "mispredictions ({per_class_miss}) exceed branches ({per_class})"
        );
        let derived = live
            .btb
            .jte_inserts
            .checked_sub(live.btb.jte_evictions + live.btb.jte_flushed)
            .expect("JTE losses cannot exceed inserts");
        assert_eq!(
            resident_jtes, derived,
            "resident JTEs diverged from insert/eviction/flush accounting"
        );
    }
}

/// Owner slot for the machine's optional sink (manual `Debug` because
/// trait objects aren't).
pub(crate) struct SinkSlot(pub(crate) Option<Box<dyn TraceSink>>);

impl std::fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SinkSlot(installed: {})", self.0.is_some())
    }
}

// ---------------------------------------------------------------------
// Cycle breakdown (Fig. 7 / Fig. 10 attribution)
// ---------------------------------------------------------------------

/// Streams the event stream into the dispatch-cycle decomposition the
/// paper discusses around Fig. 7/10: where cycles go (issue vs. redirect
/// vs. fetch/data stalls vs. Rop waits), attributed from the *actual
/// charged penalties* of each retirement rather than from PC-range
/// profile heuristics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Total cycles observed.
    pub total: u64,
    /// Issue slots and operand interlocks (residual after the explicit
    /// penalty categories below).
    pub issue: u64,
    /// Fetch-side stalls (I-cache/I-TLB misses, L2/DRAM).
    pub fetch_stall: u64,
    /// Data-side stalls (D-cache/D-TLB misses, L2/DRAM).
    pub data_stall: u64,
    /// Front-end redirect penalties (branch/jump mispredicts, `jal`
    /// decode redirects, `bop` bubbles).
    pub redirect: u64,
    /// Cycles stalled waiting for Rop at a `bop`.
    pub bop_stall: u64,
    /// Of `total`, cycles charged at dispatcher-range PCs.
    pub dispatch_total: u64,
    /// Of `redirect`, penalties charged at dispatcher-range PCs.
    pub dispatch_redirect: u64,
    /// Of `fetch_stall`, cycles charged at dispatcher-range PCs.
    pub dispatch_fetch_stall: u64,
    /// Events observed.
    pub events: u64,
}

impl CycleBreakdown {
    /// Folds one event into the decomposition.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.events += 1;
        self.total += ev.cycles;
        let redirect = ev.redirect.map_or(0, |r| r.penalty);
        let bop_stall = ev.bop.map_or(0, |b| b.stall);
        let data = ev.data.map_or(0, |d| d.penalty);
        let explicit = ev.fetch.penalty + data + redirect + bop_stall;
        self.fetch_stall += ev.fetch.penalty;
        self.data_stall += data;
        self.redirect += redirect;
        self.bop_stall += bop_stall;
        // Penalties are charged within the retirement's cycle delta, so
        // the residual is the issue slot plus operand interlocks.
        self.issue += ev.cycles.saturating_sub(explicit);
        if ev.dispatch {
            self.dispatch_total += ev.cycles;
            self.dispatch_redirect += redirect;
            self.dispatch_fetch_stall += ev.fetch.penalty;
        }
    }
}

impl TraceSink for CycleBreakdown {
    fn event(&mut self, ev: &TraceEvent) {
        self.observe(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let base = TraceEvent {
            seq: 0,
            pc: 0x1_0000,
            class: InstClass::Alu,
            cycle: 1,
            cycles: 1,
            dispatch: false,
            fetch: FetchAccess::default(),
            data: None,
            branch: None,
            redirect: None,
            bop: None,
            inserts: Inserts::default(),
            flush: None,
            fault: None,
            arch: None,
        };
        let mut load = TraceEvent {
            seq: 1,
            pc: 0x1_0004,
            class: InstClass::Load,
            cycle: 40,
            cycles: 39,
            dispatch: true,
            ..base
        };
        load.fetch = FetchAccess {
            itlb_miss: true,
            icache_miss: true,
            l2: Some(L2Access { miss: true, writeback: false }),
            penalty: 25,
        };
        load.data = Some(DataAccess {
            dtlb_miss: false,
            dcache_miss: true,
            writeback: true,
            l2: Some(L2Access { miss: false, writeback: true }),
            penalty: 8,
        });
        load.arch = Some(ArchInfo {
            wx: Some((10, 0xDEAD_BEEF)),
            wf: None,
            ea: Some(0x2_0008),
            store: None,
            next_pc: 0x1_0008,
        });
        let mut bop = TraceEvent {
            seq: 2,
            pc: 0x1_0008,
            class: InstClass::Bop,
            cycle: 45,
            cycles: 5,
            ..base
        };
        bop.bop = Some(BopEvent { outcome: BopOutcome::Hit, stall: 2 });
        bop.redirect = Some(RedirectEvent { cause: RedirectCause::BopHit, penalty: 1 });
        let mut jru = TraceEvent {
            seq: 3,
            pc: 0x1_000C,
            class: InstClass::Jru,
            cycle: 50,
            cycles: 5,
            ..base
        };
        jru.branch = Some(BranchEvent { class: BranchClass::IndirectDispatch, mispredicted: true });
        jru.redirect = Some(RedirectEvent { cause: RedirectCause::IndirectMispredict, penalty: 3 });
        jru.inserts.push(BtbInsertEvent {
            key: EntryKind::Jte,
            outcome: InsertOutcome::Inserted {
                evicted: Some(EntryKind::Pc),
                remote_jte_evicted: false,
            },
        });
        jru.inserts.push(BtbInsertEvent { key: EntryKind::Pc, outcome: InsertOutcome::Blocked });
        // Zero values must survive the roundtrip (presence is keyed, not
        // value-elided like the flag helpers).
        jru.arch = Some(ArchInfo {
            wx: Some((0, 0)),
            wf: Some((3, 0)),
            ea: None,
            store: Some(0),
            next_pc: 0x1_0040,
        });
        let mut flush = TraceEvent {
            seq: 4,
            pc: 0x1_0010,
            class: InstClass::JteFlush,
            cycle: 51,
            cycles: 1,
            ..base
        };
        flush.flush = Some(JteFlushEvent { flushes: 1, flushed: 4 });
        flush.fault = Some(FaultEvent { kind: FaultKind::JteInvalidate, evicted: 1 });
        vec![base, load, bop, jru, flush]
    }

    #[test]
    fn json_roundtrip_preserves_events() {
        for ev in sample_events() {
            let line = ev.to_json();
            let back = TraceEvent::from_json(&line).unwrap_or_else(|e| panic!("parse {line}: {e}"));
            assert_eq!(back, ev, "roundtrip of {line}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(TraceEvent::from_json("not json").is_err());
        assert!(TraceEvent::from_json("{\"seq\":0}").is_err()); // missing fields
        assert!(TraceEvent::from_json(
            "{\"seq\":0,\"pc\":0,\"class\":\"nope\",\"cycle\":0,\"cycles\":0}"
        )
        .is_err());
        assert!(TraceEvent::from_json("{\"seq\":0}{").is_err()); // trailing
    }

    #[test]
    fn replay_aggregates_counters() {
        let mut r = ReplayStats::default();
        for ev in sample_events() {
            r.observe(&ev);
        }
        let s = r.stats();
        assert_eq!(s.instructions, 5);
        assert_eq!(s.cycles, 51);
        assert_eq!(s.loads, 1);
        assert_eq!(s.dispatch_instructions, 1);
        assert_eq!(s.icache.accesses, 5);
        assert_eq!(s.icache.misses, 1);
        assert_eq!(s.itlb.misses, 1);
        assert_eq!(s.dcache.accesses, 1);
        assert_eq!(s.dcache.misses, 1);
        assert_eq!(s.dcache.writebacks, 1);
        assert_eq!(s.l2.accesses, 2);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.l2.writebacks, 1);
        assert_eq!(s.bop_executed, 1);
        assert_eq!(s.bop_hits, 1);
        assert_eq!(s.bop_misses, 0);
        assert_eq!(s.bop_stall_cycles, 2);
        assert_eq!(s.jru_executed, 1);
        assert_eq!(s.indirect_dispatch.executed, 1);
        assert_eq!(s.indirect_dispatch.mispredicted, 1);
        assert_eq!(s.btb.jte_inserts, 1);
        assert_eq!(s.btb.btb_evicted_by_jte, 1);
        assert_eq!(s.btb.btb_blocked_by_jte, 1);
        assert_eq!(s.btb.jte_flushes, 1);
        assert_eq!(s.btb.jte_flushed, 4);
        // The injected fault on the last event accounts its JTE loss.
        assert_eq!(s.btb.jte_evictions, 1);
    }

    #[test]
    fn ring_sink_keeps_tail() {
        let mut sink = RingSink::new(3);
        assert!(sink.is_empty());
        for ev in sample_events() {
            sink.event(&ev);
        }
        assert_eq!(sink.len(), 3);
        let seqs: Vec<u64> = sink.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        let jsonl = sink.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        let first = TraceEvent::from_json(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(first.seq, 2);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn replay_rejects_reordering() {
        let evs = sample_events();
        let mut r = ReplayStats::default();
        r.observe(&evs[1]);
    }

    #[test]
    fn diff_stats_pinpoints_field() {
        let a = SimStats::default();
        let mut b = SimStats::default();
        assert_eq!(diff_stats(&a, &b), None);
        b.bop_hits = 3;
        let d = diff_stats(&a, &b).expect("differs");
        assert!(d.contains("bop_hits"), "got {d}");
    }

    #[test]
    fn breakdown_decomposes_cycles() {
        let mut bd = CycleBreakdown::default();
        for ev in sample_events() {
            bd.observe(&ev);
        }
        assert_eq!(bd.events, 5);
        assert_eq!(bd.total, 51);
        assert_eq!(bd.fetch_stall, 25);
        assert_eq!(bd.data_stall, 8);
        assert_eq!(bd.redirect, 4);
        assert_eq!(bd.bop_stall, 2);
        // Components + residual == total.
        assert_eq!(
            bd.issue + bd.fetch_stall + bd.data_stall + bd.redirect + bd.bop_stall,
            bd.total
        );
        assert_eq!(bd.dispatch_total, 39);
    }

    #[test]
    fn vec_sink_collects() {
        let mut sink = VecSink::default();
        for ev in sample_events() {
            sink.event(&ev);
        }
        assert_eq!(sink.events.len(), 5);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        for ev in sample_events() {
            sink.event(&ev);
        }
        sink.finish();
        let text = String::from_utf8(sink.w).unwrap();
        let mut r = ReplayStats::default();
        for line in text.lines() {
            r.observe(&TraceEvent::from_json(line).expect("parses"));
        }
        assert_eq!(r.events(), 5);
    }
}
