//! The sampled-simulation scheduler: drives the machine through the
//! fast-forward → warm → measure cadence of a
//! [`SamplingPlan`](crate::SamplingPlan) and produces the scaled
//! whole-run estimate.
//!
//! Mode seams:
//!
//! * *fast-forward* hands the guest to the `scd-ref` reference core
//!   (the same producer the execute-ahead replay engine uses) and syncs
//!   the architectural state back at the leg boundary;
//! * *warming* is the interleaved loop monomorphized with `WARMING =
//!   true` ([`Machine::run_warming`]) — caches, TLBs, predictors and the
//!   JTE overlay update, the clock does not;
//! * *measure* is the stock detailed interleaved loop; its counter
//!   deltas feed the [`SampleAccum`](crate::SampleAccum).
//!
//! The emulated context-switch flush quantum is instruction-count
//! driven and mode-independent: the fast-forward leg chunks the
//! reference core's run at every `next_flush_at` boundary and applies
//! both the architectural (`Rop.v` clear) and micro-architectural (JTE
//! flush) effects exactly where the detailed loop would have.

use super::{Exit, Machine, ReplayMode, SimError};
use crate::config::ScdConfig;
use crate::sampling::{SampleAccum, SampleReport, SamplingPlan};
use crate::snapshot::Snapshot;
use crate::stats::SimStats;
use scd_ref::{RefCore, Segment};

impl Machine {
    /// Runs `insts` instructions in pure architectural fast-forward on
    /// the reference core, then syncs registers, PC, SCD state, guest
    /// output and memory back into the machine. Charges no cycles and
    /// touches no predictive structures (except the flush quantum's JTE
    /// flushes, which land exactly where detailed execution would put
    /// them). Returns the guest's exit code if it halted mid-leg.
    ///
    /// # Errors
    /// Guest faults are replicated with the interleaved loop's partial
    /// charging (see `replicate_error`).
    fn run_fastforward(&mut self, insts: u64) -> Result<Option<u64>, SimError> {
        if insts == 0 {
            return Ok(None);
        }
        let scd_cfg: ScdConfig = self.cfg.scd;
        let nbids = scd_cfg.branch_ids.min(super::MAX_BRANCH_IDS);
        let flush_interval = scd_cfg.flush_interval.unwrap_or(u64::MAX);
        let base = self.stats.instructions;
        let target = base + insts;

        // Same construction as the replay producer: move the guest
        // memory into the core, seed the live SCD register sets. The
        // decoded text is recycled leg to leg via `ff_decoded`.
        let segments: Vec<Segment> = self
            .mem
            .take_all_data()
            .into_iter()
            .map(|(name, seg_base, data)| Segment {
                name: name.to_string(),
                base: seg_base,
                data,
            })
            .collect();
        let decoded = self
            .ff_decoded
            .take()
            .unwrap_or_else(|| self.insts.iter().copied().map(Some).collect());
        let mut core = RefCore::from_owned_state(
            self.text_base,
            self.text_end,
            decoded,
            segments,
            self.regs,
            self.fregs,
            self.pc,
            scd_cfg.enabled,
            scd_cfg.branch_ids,
        );
        for (bid, s) in self.scd.iter().take(nbids).enumerate() {
            core.seed_scd(bid, s.rop_v, s.rop_d, s.rmask);
        }

        // Run in chunks bounded by the flush quantum. `begin_retirement`
        // counts the instruction first and flushes when that (1-based)
        // number reaches `next_flush_at`, i.e. *before* the triggering
        // instruction executes — so here the flush fires once the next
        // instruction to execute would be number `next_flush_at`.
        let mut exited: Option<u64> = None;
        let mut fault: Option<scd_ref::RefError> = None;
        loop {
            let done = base + core.instructions;
            if done >= target {
                break;
            }
            if done + 1 >= self.next_flush_at {
                core.flush_rop();
                self.jte_flush();
                self.next_flush_at = self.next_flush_at.saturating_add(flush_interval);
            }
            let stop = target.min(self.next_flush_at.saturating_sub(1));
            match core.run(stop - base) {
                Ok(code) => {
                    exited = Some(code);
                    break;
                }
                Err(scd_ref::RefError::InstLimit { .. }) => {}
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }

        // Sync the architectural state back. `rop_ready` is stamped with
        // the (frozen) current cycle: everything that happened during
        // fast-forward is architecturally settled by now.
        self.regs = core.regs;
        self.fregs = core.fregs;
        self.pc = core.pc;
        self.stats.instructions += core.instructions;
        self.output.extend_from_slice(&core.output);
        for (bid, s) in self.scd.iter_mut().take(nbids).enumerate() {
            let (rop_v, rop_d, rmask) = core.scd_state(bid);
            s.rop_v = rop_v;
            s.rop_d = rop_d;
            s.rmask = rmask;
            s.rop_ready = self.cycle;
        }
        let hws = core.seg_high_waters().to_vec();
        let (decoded, segments) = core.into_insts_and_segments();
        self.ff_decoded = Some(decoded);
        self.mem
            .put_back_data(segments.into_iter().map(|s| s.data).zip(hws));

        match fault {
            Some(e) => {
                let err = self.replicate_error::<false>(e, &scd_cfg);
                self.flush_fetch_streak();
                Err(err)
            }
            None => Ok(exited),
        }
    }

    /// Runs the guest to completion (or `max_insts`) under `plan`'s
    /// fast-forward → warm → measure cadence, then overwrites
    /// `self.stats` with the measured windows scaled to the exact total
    /// instruction count. Architectural results (registers, memory,
    /// guest output, exit code, instruction count) are exact; timing
    /// counters are estimates whose dispersion the returned
    /// [`SampleReport`] quantifies.
    ///
    /// Requires a fresh, observer-free machine: the per-retirement
    /// observers (tracer, profiler, fault plans) assume they see every
    /// retirement in detailed mode, and the invariant checker's
    /// identities do not hold across mode seams — it is disarmed for the
    /// whole run, including in debug builds.
    ///
    /// If the guest exits before the first measured window completes,
    /// the run restores its initial snapshot and re-runs in exact full
    /// detail (`exact_fallback` in the report) — a guest that short is
    /// cheaper to simulate than to estimate badly.
    ///
    /// # Errors
    /// Same contract as [`Machine::run`]; on `InstLimit` the estimate is
    /// still applied to `self.stats` before the error propagates.
    pub fn run_sampled(
        &mut self,
        max_insts: u64,
        plan: &SamplingPlan,
    ) -> Result<(Exit, SampleReport), SimError> {
        assert_eq!(
            self.stats.instructions, 0,
            "run_sampled requires a fresh machine"
        );
        assert!(
            self.tracer.0.is_none() && self.profile.is_none() && self.fault_plan.is_none(),
            "run_sampled cannot carry per-retirement observers"
        );
        self.invariants = None;

        let initial = self.snapshot();
        let mut acc = SampleAccum::default();
        let mut ff_insts = 0u64;
        let mut warm_insts = 0u64;
        let mut exit: Option<Exit> = None;

        // The warm leg's engine. Per-structure windows always take the
        // gated replay consumer — it is the only engine that implements
        // them (inline via `warm_leg_sync` on hosts with no core to
        // spare). Uniform plans take it only where it wins: when the
        // producer thread can overlap the leg's fast-forward span with
        // the previous drain (`Force`, or `Auto` on a pipelining host).
        // On a single CPU the producer and drain serialize and the
        // `run_fastforward` + `run_warming` cadence is cheaper, so
        // `Auto` falls back to it — the two cadences are bit-identical
        // either way, which `tests/warm_replay.rs` holds.
        let split_windows = plan.btb_warmup != plan.warmup || plan.pred_warmup != plan.warmup;
        let replay_warm = plan.warm_len() > 0
            && (split_windows
                || match self.replay {
                    ReplayMode::Off => false,
                    ReplayMode::Auto => super::host_can_pipeline(),
                    ReplayMode::Force => true,
                });

        while exit.is_none() && self.stats.instructions < max_insts {
            // --- fast-forward to the next interval's warm point ---
            let ff = plan.skip().min(max_insts - self.stats.instructions);
            if replay_warm {
                // --- fused fast-forward + replay-driven warming ---
                let n0 = self.stats.instructions;
                let warm_end = (n0 + ff).saturating_add(plan.warm_len()).min(max_insts);
                let out = self.warm_leg(
                    ff,
                    warm_end,
                    (plan.warmup, plan.btb_warmup, plan.pred_warmup),
                )?;
                ff_insts += out.ff_retired;
                warm_insts += out.warm_retired;
                if let Some(e) = out.exit {
                    exit = Some(e);
                    break;
                }
            } else {
                if ff > 0 {
                    let before = self.stats.instructions;
                    let code = self.run_fastforward(ff)?;
                    ff_insts += self.stats.instructions - before;
                    if let Some(code) = code {
                        exit = Some(Exit {
                            code,
                            output: std::mem::take(&mut self.output),
                        });
                        break;
                    }
                }

                // --- interleaved functional warming ---
                if plan.warmup > 0 && self.stats.instructions < max_insts {
                    let before = self.stats.instructions;
                    let until = (before + plan.warmup).min(max_insts);
                    match self.run_warming(until) {
                        Ok(e) => {
                            warm_insts += self.stats.instructions - before;
                            exit = Some(e);
                            break;
                        }
                        Err(SimError::InstLimit { .. }) => {
                            warm_insts += self.stats.instructions - before;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            if self.stats.instructions >= max_insts {
                break;
            }

            // --- detailed measurement ---
            let until = (self.stats.instructions + plan.measure).min(max_insts);
            let before = self.stats.clone();
            let check = plan.self_check.then(|| self.snapshot());
            let res = self.run_impl::<false>(until);
            let delta = self.stats.delta_since(&before);
            match res {
                Ok(e) => exit = Some(e),
                Err(SimError::InstLimit { .. }) => {}
                Err(e) => return Err(e),
            }
            acc.record(&delta);
            if let Some(snap) = check {
                self.verify_measured_window(&snap, &before, &delta, until, exit.as_ref());
            }
        }

        let total = self.stats.instructions;
        if acc.intervals() == 0 {
            // Too short to sample: the guest exited (or the budget ran
            // out) before any measured window. Re-run exactly.
            self.restore(&initial)
                .expect("restoring a snapshot this run just took");
            let e = self.run(max_insts)?;
            let stats = &self.stats;
            let report = SampleReport {
                plan: *plan,
                intervals: 0,
                total_insts: stats.instructions,
                measured_insts: stats.instructions,
                measured_cycles: stats.cycles,
                ff_insts: 0,
                warm_insts: 0,
                cpi_mean: stats.cycles as f64 / stats.instructions.max(1) as f64,
                cpi_ci95: 0.0,
                cycles_est: stats.cycles,
                cycles_ci95: 0,
                exact_fallback: true,
            };
            return Ok((e, report));
        }

        let (est, cpi_mean, cpi_ci95) = acc.estimate(total);
        let report = SampleReport {
            plan: *plan,
            intervals: acc.intervals(),
            total_insts: total,
            measured_insts: acc.measured_insts(),
            measured_cycles: acc.measured_cycles(),
            ff_insts,
            warm_insts,
            cpi_mean,
            cpi_ci95,
            cycles_est: est.cycles,
            cycles_ci95: (cpi_ci95 * total as f64).round() as u64,
            exact_fallback: false,
        };
        self.stats = est;
        match exit {
            Some(e) => Ok((e, report)),
            None => {
                // Budget exhausted mid-run: same error surface as
                // `Machine::run`, with the estimate already applied.
                Err(SimError::InstLimit { limit: max_insts })
            }
        }
    }

    /// The `self_check` paranoia pass: restore the pre-window snapshot,
    /// re-run the same measured window, and panic unless the second pass
    /// reproduced the first bit-for-bit (counter delta, exit behavior
    /// and full end-state snapshot). Leaves the machine in the same end
    /// state the first pass produced.
    fn verify_measured_window(
        &mut self,
        pre: &Snapshot,
        before: &SimStats,
        delta: &SimStats,
        until: u64,
        exit: Option<&Exit>,
    ) {
        let end = self.snapshot();
        self.restore(pre)
            .expect("restoring a snapshot this run just took");
        let res = self.run_impl::<false>(until);
        let delta2 = self.stats.delta_since(before);
        assert_eq!(
            &delta2, delta,
            "sampled self-check: re-running a measured window changed its stats delta"
        );
        match (res, exit) {
            (Ok(e2), Some(e1)) => assert_eq!(
                &e2, e1,
                "sampled self-check: re-running a measured window changed the guest exit"
            ),
            (Err(SimError::InstLimit { .. }), None) => {}
            (res, exit) => panic!(
                "sampled self-check: window replay diverged (first pass exit: {}, \
                 second pass: {res:?})",
                exit.is_some()
            ),
        }
        assert_eq!(
            self.snapshot().to_bytes(),
            end.to_bytes(),
            "sampled self-check: re-running a measured window changed the end state"
        );
    }
}
