//! Execute-ahead + timing replay: the decoupled, pipelined fast path.
//!
//! The interleaved run loop pays for functional execution and timing
//! bookkeeping on every retirement. This module splits them: the
//! `scd-ref` ISS (the *producer*, on its own thread) executes ahead
//! functionally and emits a compact retirement stream in fixed-size
//! batches, and the timing model (the *consumer*,
//! [`Machine::run_replay`]) drains them, charging cycles and statistics
//! without re-executing semantics. Every data result still comes from
//! the single `scd_isa::exec` semantics table — via the producer — so
//! the two paths cannot drift on values.
//!
//! # Ownership: the guest memory moves, it is not cloned
//!
//! The producer takes the machine's guest memory segments (a 200 MB
//! heap must not be cloned per run) and owns them for the duration.
//! The consumer never needs memory: loads take their values from the
//! record stream, and stores were already applied — to the very same
//! bytes — by the producer. Because the producer runs *ahead*, memory
//! transiently holds future stores; an **undo log** (old bytes of every
//! store, tagged with its retirement number) lets any early stop — a
//! watchdog, a mis-speculated `bop` — rewind memory to the consumer's
//! exact retirement before the segments move back into the machine.
//!
//! # Why the stream can be this small
//!
//! The consumer keeps its architectural registers *exact*: each record
//! carries the writeback value, effective address and store data, which
//! the consumer applies to its own register files. Everything else the
//! timing model needs (branch targets of direct jumps, `ecall` service
//! numbers, `setmask`/`jru` operands, VBBI hint values) it reads from
//! its own — exact — registers, precisely as the interleaved loop does.
//!
//! # Timing-dependent control flow: speculating through `bop`
//!
//! `bop` is the one instruction whose *architectural* outcome depends
//! on micro-architectural state — the BTB/JTE lookup (Section III of
//! the paper). The producer does not stop there (dispatch-heavy guests
//! hit a `bop` every ~30 instructions, which would chop the stream into
//! confetti); it *speculates* with its own architectural JTE map — a
//! superset of the DUT's BTB-resident JTEs, trained by the same `jru`
//! stream but never evicting — and records the predicted outcome. The
//! consumer resolves each `bop` with the real front end
//! ([`Machine::exec_bop`]) and verifies the prediction. On the rare
//! mismatch (an evicted DUT JTE, an unready `Rop` under the
//! fall-through scheme) it sends the producer a rollback: the producer
//! rewinds memory through the undo log, adopts the consumer's exact
//! register/SCD state, bumps the stream generation, and refills; the
//! consumer discards in-flight batches of the old generation. Under the
//! paper's stall scheme the architectural map and the DUT agree
//! essentially always (the pinned benchmarks measure 100.0% `bop` hit
//! rates), so batches run full and the two threads pipeline: wall time
//! approaches max(functional execution, timing model) instead of their
//! sum.
//!
//! # Why stats stay bit-identical
//!
//! The consumer performs, per retirement, exactly the calls of the
//! interleaved loop in the same order — `fetch_timing`, `issue`,
//! `begin_retirement`, then a timing twin of `execute_inst` whose arms
//! mirror the originals line for line with values sourced from the
//! record instead of computed. The emulated context-switch flush
//! quantum is instruction-count-keyed, so the producer mirrors it at
//! the same retirement numbers. The instruction limit needs no
//! per-record check: the producer emits no record past the budget, so
//! the limit can only fire at a batch boundary — the same retirement
//! number the interleaved loop stops at. Cycle and wall-clock watchdogs
//! *are* checked per record (they depend on consumer-side time), in the
//! interleaved loop's order, but only when a budget is armed.
//! `tests/golden_stats.rs` holds the paths to bit-identical
//! [`SimStats`](crate::SimStats).
//!
//! Because the consumer's architectural state is exact after every
//! drained record and teardown rewinds producer-side stores past the
//! consumer's point, *any* return from `run_replay` (exit, limit,
//! watchdog, fault) leaves a coherent machine: snapshots compose with
//! replay with no extra bookkeeping.

use super::execute::StepOut;
use super::{Exit, Machine, SimError, WatchdogKind};
use crate::config::ScdConfig;
use crate::mem::MemFault;
use crate::trace::InstClass;
use scd_isa::{exec, AluOp, FpOp, Inst, Reg};
use scd_ref::{BopHint, RefCore, RefError, Segment};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;

/// Records per batch. Sized so a batch amortizes the channel round-trip
/// while staying cache-resident through fill and drain.
pub(crate) const REPLAY_BATCH: usize = 1024;

/// Batches in flight between producer and consumer. Deep enough to ride
/// out scheduling hiccups; shallow enough that the undo log and the
/// rollback discard window stay small.
pub(super) const CHANNEL_DEPTH: usize = 4;

/// One retired instruction, as the producer saw it.
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct ReplayRec {
    /// Index into the decoded text / static side-table.
    pub(super) idx: u32,
    /// Conditional branch outcome, or a speculated `bop`'s predicted
    /// hit. Carried explicitly: a taken branch with offset 4 lands on
    /// `pc + 4` exactly like a not-taken one, and inferring "taken" from
    /// `next_pc` would mistrain the direction predictor on that edge.
    taken: bool,
    /// Writeback value (integer or FP), or the resolved target for
    /// `jalr`/`jru`/`bop` (whose integer writeback is statically absent
    /// or `pc + 4`).
    pub(super) a: u64,
    /// Effective address of a memory access.
    pub(super) ea: u64,
    /// Store data (post width-truncation), or the masked `Rop` value for
    /// `load_op`.
    c: u64,
}

/// Why the producer stopped filling a batch.
#[derive(Debug, Clone, Copy)]
pub(super) enum Stop {
    /// Batch full; more instructions pending.
    Full,
    /// The guest's halting `ecall` is the last record in the batch — or,
    /// when the batch is empty, the guest halted inside the producer's
    /// no-record fast-forward span (the attached [`SyncArch`] carries
    /// the final state).
    Exit,
    /// The producer's instruction budget (the run's `max_insts`) is
    /// exhausted.
    Limit,
    /// The producer faulted at its current PC; no record was emitted for
    /// the faulting instruction.
    Err(RefError),
}

/// The producer's architectural state at its fast-forward → record
/// boundary, shipped to the consumer in the first batch of a warm leg.
/// The consumer adopts it exactly as the sampled scheduler's
/// fast-forward leg syncs the reference core back.
pub(super) struct SyncArch {
    pub(super) regs: [u64; 32],
    pub(super) fregs: [u64; 32],
    pub(super) pc: u64,
    /// Absolute retirement count at the boundary.
    pub(super) n: u64,
    pub(super) next_flush_at: u64,
    /// Guest output bytes emitted since the producer was built.
    pub(super) out: Vec<u8>,
    /// `(rop_v, rop_d, rmask)` per branch id.
    pub(super) scd: [(bool, u64, u64); super::MAX_BRANCH_IDS],
}

/// A fixed-size batch of retirement records, recycled through the
/// channel pair (boxed, so channel sends move a pointer, not 40 KiB).
pub(super) struct Batch {
    pub(super) recs: Box<[ReplayRec]>,
    pub(super) len: usize,
    pub(super) stop: Stop,
    /// Stream generation; bumped by every rollback so the consumer can
    /// discard batches speculated past a mispredicted `bop`.
    pub(super) gen: u32,
    /// Fast-forward → record boundary state, attached exactly once per
    /// producer (on the batch that crosses — or stops inside — the
    /// fast-forward span). Absent entirely when the producer records
    /// from its first instruction.
    pub(super) sync: Option<Box<SyncArch>>,
}

impl Batch {
    pub(super) fn new() -> Self {
        Batch {
            recs: vec![ReplayRec::default(); REPLAY_BATCH].into_boxed_slice(),
            len: 0,
            stop: Stop::Full,
            gen: 0,
            sync: None,
        }
    }
}

/// Which structure classes a warming-mode replay record updates. The
/// sampled warm leg turns each class on only for the tail of the leg
/// its [`SamplingPlan`](crate::SamplingPlan) window spans; detailed
/// replay passes [`WarmGates::ALL`] (and compiles every check away via
/// the `!WARMING ||` guards).
#[derive(Debug, Clone, Copy)]
pub(super) struct WarmGates {
    /// I$/I-TLB fetch touches and D$/D-TLB/L2 data touches.
    pub(super) cache: bool,
    /// PC-indexed BTB entries (direct jumps, conditional-branch targets).
    pub(super) btb: bool,
    /// Direction predictor, ITTAGE, RAS and indirect (`jalr`) traffic.
    pub(super) pred: bool,
}

impl WarmGates {
    pub(super) const ALL: WarmGates = WarmGates {
        cache: true,
        btb: true,
        pred: true,
    };
}

/// Old bytes of one producer-side store, for rollback.
struct UndoEnt {
    /// Retirement number (1-based, global) of the store.
    n: u64,
    addr: u64,
    width: u8,
    old: u64,
}

/// The consumer's exact architectural point, shipped to the producer on
/// rollback.
pub(super) struct SyncState {
    regs: [u64; 32],
    fregs: [u64; 32],
    pc: u64,
    /// Retirements completed (`stats.instructions`).
    n: u64,
    next_flush_at: u64,
    /// Guest output bytes emitted *since the producer was built*.
    out_len: usize,
    /// `(rop_v, rop_d, rmask)` per branch id.
    scd: [(bool, u64, u64); super::MAX_BRANCH_IDS],
}

/// Consumer → producer control messages.
pub(super) enum Down {
    /// A drained (or discarded) batch box, plus the consumer's
    /// retirement count — the producer prunes undo entries at or below
    /// it.
    Recycle(Box<Batch>, u64),
    /// A `bop` speculation failed: rewind to this exact state and refill
    /// under the next generation.
    Rollback(Box<SyncState>),
    /// The run is over at this retirement count: rewind memory past it
    /// and hand the segments back.
    Stop(u64),
}

/// The execute-ahead functional producer: an `scd-ref` core owning the
/// guest memory, plus the mirrored flush-quantum bookkeeping and the
/// store undo log.
pub(super) struct Producer {
    pub(super) core: RefCore,
    insts: Arc<[Inst]>,
    text_base: u64,
    text_end: u64,
    /// The run's total retirement budget (`max_insts`).
    max_insts: u64,
    /// Retirement count, continuing the machine's
    /// (`stats.instructions`).
    n: u64,
    /// Retirement number at which record emission starts. Instructions
    /// before it run producer-side at full functional speed with no
    /// records, no undo logging and no consumer involvement — the warm
    /// leg's fast-forward span. Pure replay sets it to the starting
    /// count (record everything).
    record_from: u64,
    /// Whether the fast-forward → record boundary state has already been
    /// shipped ([`Batch::sync`] is attached exactly once).
    sync_sent: bool,
    /// Mirror of the machine's instruction-count-keyed context-switch
    /// flush quantum: the consumer flushes (JTEs *and* `Rop` valid bits)
    /// in `begin_retirement`, so the producer must clear its own `Rop`
    /// valid bits at the same retirement numbers, *before* executing
    /// that retirement.
    next_flush_at: u64,
    flush_interval: u64,
    pub(super) gen: u32,
    nbids: usize,
    undo: VecDeque<UndoEnt>,
    /// Test hook mirrored from [`Machine::inject_replay_producer_panic`]:
    /// panic while filling the first batch.
    test_panic: bool,
}

impl Producer {
    /// Mirrors the consumer's `begin_retirement` flush quantum for
    /// retirement number `n` (1-based), before that retirement executes.
    #[inline]
    fn flush_quantum(&mut self, n: u64) {
        if n >= self.next_flush_at {
            self.core.flush_rop();
            self.next_flush_at += self.flush_interval;
        }
    }

    /// Logs the old bytes under an imminent store. An unmapped address
    /// is skipped: the step is about to fault without writing.
    #[inline]
    fn log_store(&mut self, addr: u64, width: u64) {
        if let Some(old) = self.core.read_mem(addr, width) {
            self.undo.push_back(UndoEnt {
                n: self.n + 1,
                addr,
                width: width as u8,
                old,
            });
        }
    }

    /// Drops undo entries for stores the consumer has already replayed.
    pub(super) fn prune_undo(&mut self, acked: u64) {
        while self.undo.front().is_some_and(|e| e.n <= acked) {
            self.undo.pop_front();
        }
    }

    /// Rewinds memory to retirement `n`: undoes every logged store past
    /// it, newest first.
    pub(super) fn unwind_to(&mut self, n: u64) {
        while self.undo.back().is_some_and(|e| e.n > n) {
            let e = self.undo.pop_back().expect("checked non-empty");
            self.core.write_mem(e.addr, e.width as u64, e.old);
        }
    }

    /// Adopts the consumer's exact state after a mis-speculated `bop`.
    /// The architectural JTE map is deliberately kept: it is monotone
    /// ground truth, and stale speculative entries can only cause
    /// another (caught) misprediction, never a wrong value.
    pub(super) fn rollback(&mut self, st: &SyncState) {
        self.unwind_to(st.n);
        self.core.regs = st.regs;
        self.core.fregs = st.fregs;
        self.core.pc = st.pc;
        self.core.instructions = st.n;
        self.core.output.truncate(st.out_len);
        for (bid, &(rop_v, rop_d, rmask)) in st.scd.iter().take(self.nbids).enumerate() {
            self.core.seed_scd(bid, rop_v, rop_d, rmask);
        }
        self.n = st.n;
        self.next_flush_at = st.next_flush_at;
        self.gen = self.gen.wrapping_add(1);
    }

    /// Captures the fast-forward → record boundary state into `b`,
    /// exactly once per producer.
    fn attach_sync(&mut self, b: &mut Batch) {
        if self.sync_sent {
            return;
        }
        self.sync_sent = true;
        let mut scd = [(false, 0u64, 0u64); super::MAX_BRANCH_IDS];
        for (bid, dst) in scd.iter_mut().take(self.nbids).enumerate() {
            *dst = self.core.scd_state(bid);
        }
        b.sync = Some(Box::new(SyncArch {
            regs: self.core.regs,
            fregs: self.core.fregs,
            pc: self.core.pc,
            n: self.n,
            next_flush_at: self.next_flush_at,
            out: self.core.output.clone(),
            scd,
        }));
    }

    /// Fills `b` with up to a batch of retirement records, stopping at
    /// the halting `ecall`, the instruction budget, or a guest fault.
    /// `bop`s are speculated through, not stopped at. A pending
    /// fast-forward span (`record_from` ahead of the current count) runs
    /// first, record-free, and ships its boundary state via
    /// [`Batch::sync`].
    pub(super) fn fill(&mut self, b: &mut Batch) -> Stop {
        if self.test_panic {
            panic!("test-injected replay producer panic");
        }
        b.len = 0;
        b.sync = None;
        // Fast-forward span (warm legs only): run the core at full
        // functional speed with no records, chunked at the flush-quantum
        // boundaries exactly as the sampled scheduler's fast-forward leg
        // chunks its runs. No undo logging: rollback targets can never
        // precede `record_from`.
        while self.n < self.record_from {
            if self.n >= self.max_insts {
                self.attach_sync(b);
                return Stop::Limit;
            }
            if self.n + 1 >= self.next_flush_at {
                self.core.flush_rop();
                self.next_flush_at = self.next_flush_at.saturating_add(self.flush_interval);
            }
            let stop = self
                .record_from
                .min(self.max_insts)
                .min(self.next_flush_at.saturating_sub(1));
            let before = self.core.instructions;
            let r = self.core.run(self.core.instructions + (stop - self.n));
            self.n += self.core.instructions - before;
            match r {
                Ok(_) => {
                    // The halting `ecall` retired inside the span; the
                    // consumer reconstructs the exit from the adopted
                    // registers.
                    self.attach_sync(b);
                    return Stop::Exit;
                }
                Err(RefError::InstLimit { .. }) => {}
                Err(e) => {
                    self.attach_sync(b);
                    return Stop::Err(e);
                }
            }
        }
        self.attach_sync(b);
        loop {
            if self.n >= self.max_insts {
                return Stop::Limit;
            }
            if b.len == b.recs.len() {
                return Stop::Full;
            }
            let pc = self.core.pc;
            if pc < self.text_base || pc >= self.text_end || !pc.is_multiple_of(4) {
                return Stop::Err(RefError::PcOutOfRange { pc });
            }
            let idx = ((pc - self.text_base) / 4) as usize;
            self.flush_quantum(self.n + 1);
            let inst = self.insts[idx];
            // Branch outcomes are captured *before* the step from the
            // source operands (see `ReplayRec::taken`); stores log
            // their old bytes; `bop`s speculate via the architectural
            // JTE map.
            let mut taken = false;
            let mut hint = BopHint::Miss;
            match inst {
                Inst::Branch { op, rs1, rs2, .. } => {
                    taken = exec::branch_taken(
                        op,
                        self.core.regs[rs1.index()],
                        self.core.regs[rs2.index()],
                    );
                }
                Inst::Bop { bid } => {
                    if let Some(t) = self.core.bop_auto_target(bid) {
                        taken = true;
                        hint = BopHint::Target(t);
                    }
                }
                Inst::Store {
                    op, rs1, offset, ..
                } => {
                    let addr = self.core.regs[rs1.index()].wrapping_add(offset as u64);
                    self.log_store(addr, exec::store_width(op));
                }
                Inst::Fsd { rs1, offset, .. } => {
                    let addr = self.core.regs[rs1.index()].wrapping_add(offset as u64);
                    self.log_store(addr, 8);
                }
                _ => {}
            }
            let sa = match self.core.step(hint) {
                Ok(sa) => sa,
                Err(e) => return Stop::Err(e),
            };
            self.n += 1;
            let rec = &mut b.recs[b.len];
            rec.idx = idx as u32;
            rec.taken = taken;
            rec.a = match inst {
                Inst::Jalr { .. } | Inst::Jru { .. } | Inst::Bop { .. } => sa.next_pc,
                _ => match (sa.wx, sa.wf) {
                    (Some((_, v)), _) => v,
                    (None, Some((_, v))) => v,
                    (None, None) => 0,
                },
            };
            rec.ea = sa.ea.unwrap_or(0);
            rec.c = match inst {
                Inst::LoadOp { bid, .. } => self.core.rop_d(bid as usize),
                _ => sa.store.unwrap_or(0),
            };
            b.len += 1;
            if sa.exited.is_some() {
                return Stop::Exit;
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `String` or `&'static str` in practice; anything else is opaque).
pub(super) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// The producer thread body: fill batches, ship them, obey control
/// messages. Returns the core (with the guest memory, rewound to
/// wherever the consumer stopped) for the machine to take back.
pub(super) fn producer_loop(
    mut p: Producer,
    work_tx: mpsc::SyncSender<Box<Batch>>,
    down_rx: mpsc::Receiver<Down>,
) -> RefCore {
    let mut free: Vec<Box<Batch>> = (0..CHANNEL_DEPTH + 1)
        .map(|_| Box::new(Batch::new()))
        .collect();
    // After a terminal batch (exit/limit/fault) the producer parks: only
    // a rollback (the terminal state was speculative) or a stop can
    // follow.
    let mut parked = false;
    loop {
        loop {
            let block = parked || free.is_empty();
            let msg = if block {
                match down_rx.recv() {
                    Ok(m) => m,
                    // Consumer hung up without a stop: panic unwind on
                    // its side. Abandon the run.
                    Err(_) => return p.core,
                }
            } else {
                match down_rx.try_recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            };
            match msg {
                Down::Recycle(b, acked) => {
                    p.prune_undo(acked);
                    free.push(b);
                }
                Down::Rollback(st) => {
                    p.rollback(&st);
                    parked = false;
                }
                Down::Stop(n) => {
                    p.unwind_to(n);
                    return p.core;
                }
            }
        }
        let mut b = free.pop().expect("free batch after the drain loop");
        b.gen = p.gen;
        let stop = p.fill(&mut b);
        b.stop = stop;
        if work_tx.send(b).is_err() {
            return p.core;
        }
        if matches!(stop, Stop::Exit | Stop::Limit | Stop::Err(_)) {
            parked = true;
        }
    }
}

impl Machine {
    /// Builds the execute-ahead producer around the *moved* guest
    /// memory. `record_from` is the retirement number at which record
    /// emission starts: pure replay passes the current count (record
    /// everything), warm legs pass the fast-forward boundary.
    pub(super) fn make_producer(&mut self, max_insts: u64, record_from: u64) -> Producer {
        let scd_cfg: ScdConfig = self.cfg.scd;
        let nbids = scd_cfg.branch_ids.min(super::MAX_BRANCH_IDS);
        let segments: Vec<Segment> = self
            .mem
            .take_all_data()
            .into_iter()
            .map(|(name, base, data)| Segment {
                name: name.to_string(),
                base,
                data,
            })
            .collect();
        let decoded = self
            .ff_decoded
            .take()
            .unwrap_or_else(|| self.insts.iter().copied().map(Some).collect());
        let mut core = RefCore::from_owned_state(
            self.text_base,
            self.text_end,
            decoded,
            segments,
            self.regs,
            self.fregs,
            self.pc,
            scd_cfg.enabled,
            scd_cfg.branch_ids,
        );
        // Only the first `nbids` SCD register sets are architecturally
        // live; seeding the dormant tail would alias into live slots
        // through the oracle's `bid % nbids` reduction.
        for (bid, s) in self.scd.iter().take(nbids).enumerate() {
            core.seed_scd(bid, s.rop_v, s.rop_d, s.rmask);
        }
        Producer {
            core,
            insts: Arc::clone(&self.insts),
            text_base: self.text_base,
            text_end: self.text_end,
            max_insts,
            n: self.stats.instructions,
            record_from,
            // A producer that records from its first instruction has no
            // fast-forward boundary to ship.
            sync_sent: record_from <= self.stats.instructions,
            next_flush_at: self.next_flush_at,
            flush_interval: scd_cfg.flush_interval.unwrap_or(u64::MAX),
            gen: 0,
            nbids,
            undo: VecDeque::new(),
            test_panic: self.test_producer_panic,
        }
    }

    /// Takes the guest memory (and the recycled decoded text) back from
    /// a finished producer core.
    pub(super) fn take_back_core(&mut self, core: RefCore) {
        let hws = core.seg_high_waters().to_vec();
        let (decoded, segments) = core.into_insts_and_segments();
        self.ff_decoded = Some(decoded);
        self.mem
            .put_back_data(segments.into_iter().map(|s| s.data).zip(hws));
    }

    /// The execute-ahead run loop: functionally identical to
    /// [`Machine::run`]'s interleaved loop (same `Exit`/`SimError`
    /// behavior, bit-identical `SimStats`), reached from `run` on
    /// untraced machines unless [`Machine::set_replay`]`(false)` pinned
    /// the interleaved reference loop.
    pub(super) fn run_replay(&mut self, max_insts: u64) -> Result<Exit, SimError> {
        let scd_cfg: ScdConfig = self.cfg.scd;
        let nbids = scd_cfg.branch_ids.min(super::MAX_BRANCH_IDS);
        let cycle_budget = self.cycle_budget;
        let wall_budget = self.wall_budget;
        let wall_start = std::time::Instant::now();
        let out_base = self.output.len();

        let producer = self.make_producer(max_insts, self.stats.instructions);
        let (work_tx, work_rx) = mpsc::sync_channel::<Box<Batch>>(CHANNEL_DEPTH);
        let (down_tx, down_rx) = mpsc::channel::<Down>();
        let thread = std::thread::spawn(move || producer_loop(producer, work_tx, down_rx));

        // The instruction limit fires only at batch boundaries (the
        // producer never emits past the budget); cycle/wall watchdogs
        // need the interleaved loop's per-retirement check, but only
        // when armed.
        let per_rec_watchdogs = cycle_budget.is_some() || wall_budget.is_some();
        let mut expected_gen = 0u32;
        let mut result: Option<Result<Exit, SimError>> = None;
        while result.is_none() {
            let mut batch = match work_rx.recv() {
                Ok(b) => b,
                // Producer panicked; the join below propagates it.
                Err(_) => break,
            };
            if batch.gen != expected_gen {
                // Speculated past a rolled-back bop; discard.
                let _ = down_tx.send(Down::Recycle(batch, self.stats.instructions));
                continue;
            }
            let stop = batch.stop;
            let mut rolled_back = false;
            for i in 0..batch.len {
                if per_rec_watchdogs {
                    if let Some(e) =
                        self.replay_watchdogs(max_insts, cycle_budget, wall_budget, &wall_start)
                    {
                        result = Some(Err(e));
                        break;
                    }
                }
                let rec = batch.recs[i];
                if self.static_info[rec.idx as usize].class == InstClass::Bop {
                    if !self.replay_bop::<false>(&rec, nbids, &scd_cfg, WarmGates::ALL) {
                        // Mis-speculated: the consumer (which just
                        // resolved the bop for real) is the exact point
                        // to restart from.
                        expected_gen = expected_gen.wrapping_add(1);
                        let st = Box::new(self.sync_state(out_base));
                        let _ = down_tx.send(Down::Rollback(st));
                        rolled_back = true;
                        break;
                    }
                    continue;
                }
                match self.replay_one::<false>(&rec, nbids, &scd_cfg, WarmGates::ALL) {
                    Ok(None) => {}
                    Ok(Some(exit)) => {
                        result = Some(Ok(exit));
                        break;
                    }
                    Err(e) => {
                        result = Some(Err(e));
                        break;
                    }
                }
            }
            batch.len = 0;
            let _ = down_tx.send(Down::Recycle(batch, self.stats.instructions));
            if rolled_back || result.is_some() {
                continue;
            }
            match stop {
                Stop::Full | Stop::Exit => {}
                Stop::Limit => {
                    // The producer's budget is the consumer's remaining
                    // instruction allowance, so the limit pre-check
                    // must fire here exactly as the interleaved loop's
                    // does.
                    let e = self
                        .replay_watchdogs(max_insts, cycle_budget, wall_budget, &wall_start)
                        .expect("producer stopped at the instruction limit");
                    result = Some(Err(e));
                }
                Stop::Err(e) => {
                    result = Some(Err(
                        match self.replay_watchdogs(
                            max_insts,
                            cycle_budget,
                            wall_budget,
                            &wall_start,
                        ) {
                            Some(w) => w,
                            None => self.replicate_error::<false>(e, &scd_cfg),
                        },
                    ));
                }
            }
        }

        // Teardown: stop the producer at the consumer's exact
        // retirement, drain it out of any blocked send, and take the
        // guest memory (rewound past that retirement) back.
        self.flush_fetch_streak();
        let _ = down_tx.send(Down::Stop(self.stats.instructions));
        while work_rx.recv().is_ok() {}
        let core = match thread.join() {
            Ok(core) => core,
            Err(payload) => {
                // The producer thread panicked. Contain it: its panic
                // becomes a typed error, never a re-panic — one bad cell
                // must not abort a whole batch driver. The producer owned
                // the guest memory, so the machine's contents are gone;
                // `SimError::ProducerPanic` documents that the machine
                // must be discarded.
                self.finalize_partial();
                return Err(SimError::ProducerPanic {
                    message: panic_message(&*payload),
                });
            }
        };
        self.take_back_core(core);
        match result {
            Some(r) => r,
            None => unreachable!("replay producer disconnected without a terminal batch"),
        }
    }

    /// Captures the consumer's exact architectural point for a producer
    /// rollback.
    pub(super) fn sync_state(&self, out_base: usize) -> SyncState {
        let mut scd = [(false, 0u64, 0u64); super::MAX_BRANCH_IDS];
        for (dst, s) in scd.iter_mut().zip(self.scd.iter()) {
            *dst = (s.rop_v, s.rop_d, s.rmask);
        }
        SyncState {
            regs: self.regs,
            fregs: self.fregs,
            pc: self.pc,
            n: self.stats.instructions,
            next_flush_at: self.next_flush_at,
            out_len: self.output.len() - out_base,
            scd,
        }
    }

    /// The interleaved loop's pre-retirement checks, in its order:
    /// instruction limit, then cycle watchdog, then (every 4096
    /// retirements) the wall-clock watchdog.
    pub(super) fn replay_watchdogs(
        &mut self,
        max_insts: u64,
        cycle_budget: Option<u64>,
        wall_budget: Option<std::time::Duration>,
        wall_start: &std::time::Instant,
    ) -> Option<SimError> {
        if self.stats.instructions >= max_insts {
            self.finalize_partial();
            return Some(SimError::InstLimit { limit: max_insts });
        }
        if cycle_budget.is_some_and(|b| self.cycle >= b) {
            self.finalize_partial();
            return Some(SimError::Watchdog {
                kind: WatchdogKind::Cycles,
                instructions: self.stats.instructions,
                cycles: self.cycle,
            });
        }
        if let Some(wall) = wall_budget {
            if self.stats.instructions.is_multiple_of(4096) && wall_start.elapsed() >= wall {
                self.finalize_partial();
                return Some(SimError::Watchdog {
                    kind: WatchdogKind::WallClock,
                    instructions: self.stats.instructions,
                    cycles: self.cycle,
                });
            }
        }
        None
    }

    /// Replays one recorded retirement: the interleaved loop's stage
    /// sequence with the execute stage's timing twin. Under `WARMING`
    /// this is the twin of `run_loop::<false, true>`: no issue
    /// scoreboard, `fetch_fast::<true>` (clock frozen), with `gates`
    /// selecting which structure classes actually update — uniform
    /// all-on gates leave state bit-identical to
    /// [`Machine::run_warming`].
    #[inline]
    pub(super) fn replay_one<const WARMING: bool>(
        &mut self,
        rec: &ReplayRec,
        nbids: usize,
        scd_cfg: &ScdConfig,
        gates: WarmGates,
    ) -> Result<Option<Exit>, SimError> {
        let idx = rec.idx as usize;
        let pc = self.text_base + 4 * idx as u64;
        debug_assert_eq!(pc, self.pc, "replay stream out of sync with consumer PC");
        let inst = self.insts[idx];
        let si = self.static_info[idx];
        if !WARMING || gates.cache {
            self.fetch_fast::<WARMING>(pc);
        }
        if !WARMING {
            self.issue(&si);
        }
        self.begin_retirement::<false>(si.in_dispatch, scd_cfg);
        let step = self.replay_inst::<WARMING>(&inst, pc, rec, nbids, scd_cfg, gates)?;
        if let Some(code) = step.exit_code {
            self.finalize_partial();
            return Ok(Some(Exit {
                code,
                output: std::mem::take(&mut self.output),
            }));
        }
        self.pc = step.next_pc;
        Ok(None)
    }

    /// Resolves a `bop` with the real front end (stall scheme, JTE
    /// lookup, redirect charging — all timing-dependent), retiring it
    /// exactly like the interleaved loop. Returns whether the producer's
    /// speculation matched the resolved outcome. `bop` resolution and
    /// JTE training are never gated off in warming mode: the producer's
    /// speculation is checked against the DUT's JTE overlay, and letting
    /// it go stale would turn warm legs into rollback storms.
    pub(super) fn replay_bop<const WARMING: bool>(
        &mut self,
        rec: &ReplayRec,
        nbids: usize,
        scd_cfg: &ScdConfig,
        gates: WarmGates,
    ) -> bool {
        let idx = rec.idx as usize;
        let pc = self.text_base + 4 * idx as u64;
        debug_assert_eq!(pc, self.pc, "replay stream out of sync with consumer PC");
        let si = self.static_info[idx];
        let bid = match self.insts[idx] {
            Inst::Bop { bid } => bid,
            _ => unreachable!("bop record for a non-bop instruction"),
        };
        if !WARMING || gates.cache {
            self.fetch_fast::<WARMING>(pc);
        }
        if !WARMING {
            self.issue(&si);
        }
        self.begin_retirement::<false>(si.in_dispatch, scd_cfg);
        let hits_before = self.stats.bop_hits;
        let mut next_pc = pc + 4;
        self.exec_bop::<false, WARMING>(bid, pc, &mut next_pc, scd_cfg, nbids);
        self.pc = next_pc;
        let hit = self.stats.bop_hits > hits_before;
        hit == rec.taken && next_pc == rec.a
    }

    /// The timing twin of `execute_inst`: every arm mirrors the original
    /// line for line — identical cycle charging, counter updates and
    /// predictor/BTB traffic — with data results applied from the record
    /// instead of computed. Loads skip the memory read entirely; stores
    /// skip the write too (the producer applied it to the shared, moved
    /// guest memory already) and charge timing only.
    ///
    /// Under `WARMING`, `gates` turns structure classes off for the head
    /// of a warm leg with per-structure windows: architectural effects
    /// (registers, counters, scoreboard stamps, SCD state) always apply,
    /// only the cache/BTB/predictor *touches* are withheld.
    fn replay_inst<const WARMING: bool>(
        &mut self,
        inst: &Inst,
        pc: u64,
        rec: &ReplayRec,
        nbids: usize,
        scd_cfg: &ScdConfig,
        gates: WarmGates,
    ) -> Result<StepOut, SimError> {
        let mut next_pc = pc + 4;
        let mut exit_code: Option<u64> = None;

        match *inst {
            Inst::Lui { rd, .. } | Inst::Auipc { rd, .. } => {
                self.wx(rd, rec.a);
                self.xready[rd.index()] = self.cycle + 1;
            }
            Inst::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u64);
                self.wx(rd, pc + 4);
                self.xready[rd.index()] = self.cycle + 1;
                next_pc = target;
                if !WARMING || gates.btb {
                    self.replay_jal_predict::<WARMING>(pc, target);
                }
                if (!WARMING || gates.pred) && rd == Reg::RA {
                    self.ras.push(pc + 4);
                }
            }
            Inst::Jalr { rd, rs1, .. } => {
                let target = rec.a;
                self.wx(rd, pc + 4);
                self.xready[rd.index()] = self.cycle + 1;
                next_pc = target;
                if !WARMING || gates.pred {
                    self.account_indirect::<false, WARMING>(pc, rd, rs1, target);
                }
            }
            Inst::Branch { offset, .. } => {
                let taken = rec.taken;
                let target = pc.wrapping_add(offset as u64);
                if !WARMING || (gates.btb && gates.pred) {
                    self.replay_branch_predict::<WARMING>(pc, target, taken, &mut next_pc);
                } else {
                    // Split windows: train each structure alone, with
                    // the same update rules as the full arm.
                    use crate::btb::BtbKey;
                    if gates.pred {
                        self.direction.update(pc, taken);
                    }
                    if gates.btb {
                        let pred = self.btb.lookup_leveled(BtbKey::Pc(pc));
                        if taken && pred.map(|(t, _)| t) != Some(target) {
                            let _ = self.btb.insert(BtbKey::Pc(pc), target);
                        }
                    }
                    if taken {
                        next_pc = target;
                    }
                }
            }
            Inst::Load { rd, .. } => {
                let addr = rec.ea;
                self.wx(rd, rec.a);
                self.stats.loads += 1;
                if !WARMING || gates.cache {
                    self.data_timing::<false, WARMING>(addr, false);
                }
                self.xready[rd.index()] = self.cycle + 1 + self.cfg.load_use_penalty;
            }
            Inst::Store { .. } => {
                let addr = rec.ea;
                self.stats.stores += 1;
                if !WARMING || gates.cache {
                    self.data_timing::<false, WARMING>(addr, true);
                }
            }
            Inst::OpImm { rd, .. } => {
                self.wx(rd, rec.a);
                self.xready[rd.index()] = self.cycle + 1;
            }
            Inst::Op { op, rd, .. } => {
                self.wx(rd, rec.a);
                let lat = if op.is_muldiv() {
                    if matches!(op, AluOp::Mul | AluOp::Mulh | AluOp::Mulhu | AluOp::Mulw) {
                        self.cfg.mul_latency
                    } else {
                        self.cfg.div_latency
                    }
                } else {
                    1
                };
                self.xready[rd.index()] = self.cycle + lat;
            }
            Inst::Fld { rd, .. } => {
                let addr = rec.ea;
                self.fregs[rd.index()] = rec.a;
                self.stats.loads += 1;
                if !WARMING || gates.cache {
                    self.data_timing::<false, WARMING>(addr, false);
                }
                self.fready[rd.index()] = self.cycle + 1 + self.cfg.load_use_penalty;
            }
            Inst::Fsd { .. } => {
                let addr = rec.ea;
                self.stats.stores += 1;
                if !WARMING || gates.cache {
                    self.data_timing::<false, WARMING>(addr, true);
                }
            }
            Inst::FOp { op, rd, .. } => {
                self.fregs[rd.index()] = rec.a;
                let lat = match op {
                    FpOp::FdivD | FpOp::FsqrtD => self.cfg.fdiv_latency,
                    _ => self.cfg.fpu_latency,
                };
                self.fready[rd.index()] = self.cycle + lat;
            }
            Inst::FCmp { rd, .. } | Inst::FcvtLD { rd, .. } => {
                self.wx(rd, rec.a);
                self.xready[rd.index()] = self.cycle + self.cfg.fpu_latency;
            }
            Inst::FcvtDL { rd, .. } => {
                self.fregs[rd.index()] = rec.a;
                self.fready[rd.index()] = self.cycle + self.cfg.fpu_latency;
            }
            Inst::FmvXD { rd, .. } => {
                self.wx(rd, rec.a);
                self.xready[rd.index()] = self.cycle + 1;
            }
            Inst::FmvDX { rd, .. } => {
                self.fregs[rd.index()] = rec.a;
                self.fready[rd.index()] = self.cycle + 1;
            }
            Inst::Ecall => {
                // The consumer's registers are exact, so the service
                // dispatch reads them just like the interleaved loop.
                match self.regs[Reg::A7.index()] {
                    0 => exit_code = Some(self.regs[Reg::A0.index()]),
                    1 => self.output.push(self.regs[Reg::A0.index()] as u8),
                    _ => return Err(SimError::Break { pc }),
                }
            }
            Inst::Ebreak => return Err(SimError::Break { pc }),
            Inst::Fence => {}

            // ---- SCD extension ----
            Inst::SetMask { bid, rs1 } => {
                let bid = bid as usize % nbids.max(1);
                self.scd[bid].rmask = self.regs[rs1.index()];
            }
            Inst::Bop { .. } => {
                unreachable!("bop records are resolved by replay_bop, not replayed")
            }
            Inst::Jru { bid, rs1 } => {
                // Operand registers and SCD state are exact, so the slow
                // path (JTE training + indirect prediction) runs as-is.
                // With the predictor gated off, the JTE overlay still
                // trains (the `bop` speculation contract depends on it);
                // only the ITTAGE/BTB indirect accounting is withheld.
                next_pc = if !WARMING || gates.pred {
                    self.exec_jru::<false, WARMING>(bid, rs1, pc, scd_cfg, nbids)
                } else {
                    self.exec_jru_train_only(bid, rs1, pc, scd_cfg, nbids)
                };
                debug_assert_eq!(next_pc, rec.a, "jru target diverged from producer");
            }
            Inst::JteFlush => {
                let flushed = self.jte_flush();
                self.note_flush::<false>(flushed);
            }
            Inst::LoadOp { bid, rd, .. } => {
                let bid = bid as usize % nbids.max(1);
                let addr = rec.ea;
                self.wx(rd, rec.a);
                self.stats.loads += 1;
                if !WARMING || gates.cache {
                    self.data_timing::<false, WARMING>(addr, false);
                }
                let ready = self.cycle + 1 + self.cfg.load_use_penalty;
                self.xready[rd.index()] = ready;
                let s = &mut self.scd[bid];
                s.rop_d = rec.c;
                s.rop_v = true;
                s.rop_ready = ready;
            }
        }

        Ok(StepOut { next_pc, exit_code })
    }

    /// The `jal` arm's prediction/accounting, verbatim from
    /// `execute_inst`.
    fn replay_jal_predict<const WARMING: bool>(&mut self, pc: u64, target: u64) {
        use crate::btb::{BtbKey, EntryKind};
        use crate::stats::BranchClass;
        use crate::trace::RedirectCause;
        let pred = self.btb.lookup_leveled(BtbKey::Pc(pc));
        self.charge_l1_late_target::<WARMING>(pred.is_some_and(|(_, l1)| l1));
        let hit = pred.map(|(t, _)| t) == Some(target);
        if !hit {
            let out = self.btb.insert(BtbKey::Pc(pc), target);
            self.note_insert::<false>(EntryKind::Pc, out);
            self.redirect::<false, WARMING>(RedirectCause::JalMiss, self.cfg.jal_redirect_penalty);
        }
        self.note_branch::<false>(BranchClass::Direct, !hit);
    }

    /// The conditional-branch arm's prediction/accounting, verbatim from
    /// `execute_inst`, with the outcome supplied by the record.
    fn replay_branch_predict<const WARMING: bool>(
        &mut self,
        pc: u64,
        target: u64,
        taken: bool,
        next_pc: &mut u64,
    ) {
        use crate::btb::{BtbKey, EntryKind};
        use crate::stats::BranchClass;
        use crate::trace::RedirectCause;
        let dir_pred = self.direction.predict(pc);
        let pred = self.btb.lookup_leveled(BtbKey::Pc(pc));
        // Fetch acts on the BTB target only when the direction
        // predictor says taken; only then can L1 lateness bite.
        self.charge_l1_late_target::<WARMING>(dir_pred && pred.is_some_and(|(_, l1)| l1));
        let btb_hit = pred.map(|(t, _)| t) == Some(target);
        let pred_taken = dir_pred && btb_hit;
        let mispredicted = pred_taken != taken;
        self.direction.update(pc, taken);
        if taken {
            *next_pc = target;
            if !btb_hit {
                let out = self.btb.insert(BtbKey::Pc(pc), target);
                self.note_insert::<false>(EntryKind::Pc, out);
            }
        }
        self.note_branch::<false>(BranchClass::Conditional, mispredicted);
        if mispredicted {
            self.redirect::<false, WARMING>(
                RedirectCause::CondMispredict,
                self.cfg.branch_miss_penalty,
            );
        }
    }

    /// Reproduces a producer-detected guest error with the interleaved
    /// loop's exact partial charging: the bounds check precedes any
    /// timing, and a memory fault or trap retires its instruction
    /// (fetch + issue + `begin_retirement`) before erroring out of the
    /// execute stage.
    pub(super) fn replicate_error<const WARMING: bool>(
        &mut self,
        e: RefError,
        scd_cfg: &ScdConfig,
    ) -> SimError {
        match e {
            RefError::PcOutOfRange { pc } => SimError::PcOutOfRange { pc },
            RefError::Mem { pc, addr, write } => {
                let idx = ((pc - self.text_base) / 4) as usize;
                let si = self.static_info[idx];
                self.fetch_fast::<WARMING>(pc);
                if !WARMING {
                    self.issue(&si);
                }
                self.begin_retirement::<false>(si.in_dispatch, scd_cfg);
                let size = match self.insts[idx] {
                    Inst::Load { op, .. } | Inst::LoadOp { op, .. } => exec::load_width(op),
                    Inst::Store { op, .. } => exec::store_width(op),
                    Inst::Fld { .. } | Inst::Fsd { .. } => 8,
                    _ => unreachable!("memory fault on a non-memory instruction"),
                };
                SimError::Mem {
                    pc,
                    fault: MemFault { addr, size, write },
                }
            }
            RefError::Break { pc } => {
                let idx = ((pc - self.text_base) / 4) as usize;
                let si = self.static_info[idx];
                self.fetch_fast::<WARMING>(pc);
                if !WARMING {
                    self.issue(&si);
                }
                self.begin_retirement::<false>(si.in_dispatch, scd_cfg);
                SimError::Break { pc }
            }
            // `from_owned_state` reuses the machine's own decoded
            // instructions, and replay-mode `bop`s only ever carry
            // `Target`/`Miss` hints, so these are internal contract
            // violations, not guest errors.
            RefError::BadInst { pc } => unreachable!("producer failed to decode pc {pc:#x}"),
            RefError::BopUntrained { .. } | RefError::BopNotValid { .. } => {
                unreachable!("replay drives bops with Target/Miss hints")
            }
            RefError::InstLimit { .. } => unreachable!("producer budget is not an error"),
        }
    }
}
