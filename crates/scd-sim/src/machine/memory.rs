//! Memory stage: D-cache / D-TLB access charging and the shared L1-miss
//! path through the optional L2 to DRAM. Fetch-side charging lives in
//! [`super::frontend`] (it is part of fetch timing) but funnels through
//! the same [`Machine::l1_miss_cost`] so both sides price misses
//! identically.

use super::Machine;
use crate::trace::{DataAccess, L2Access};

impl Machine {
    /// Cost of an L1 miss (L2 hit or DRAM), updating L2 stats. Also
    /// reports the L2 outcome for trace attribution.
    pub(super) fn l1_miss_cost(&mut self, addr: u64, write: bool) -> (u64, Option<L2Access>) {
        match &mut self.l2 {
            Some(l2) => {
                self.stats.l2.accesses += 1;
                let a = l2.access(addr, write);
                if a.writeback {
                    self.stats.l2.writebacks += 1;
                }
                let ev = L2Access {
                    miss: !a.hit,
                    writeback: a.writeback,
                };
                if a.hit {
                    (self.cfg.l2_latency, Some(ev))
                } else {
                    self.stats.l2.misses += 1;
                    (self.cfg.l2_latency + self.cfg.dram_latency, Some(ev))
                }
            }
            None => (self.cfg.dram_latency, None),
        }
    }

    /// Data access timing; charges miss cycles and records attribution.
    /// Under `WARMING` the D-TLB / D-cache / L2 contents and statistics
    /// update exactly as in detailed mode, but no cycles are charged.
    pub(super) fn data_timing<const OBSERVED: bool, const WARMING: bool>(
        &mut self,
        addr: u64,
        write: bool,
    ) {
        let mut d = DataAccess::default();
        self.stats.dtlb.accesses += 1;
        if !self.dtlb.access(addr) {
            self.stats.dtlb.misses += 1;
            d.dtlb_miss = true;
            d.penalty += self.cfg.tlb_miss_penalty;
            if !WARMING {
                self.cycle += self.cfg.tlb_miss_penalty;
            }
        }
        self.stats.dcache.accesses += 1;
        let a = self.dcache.access(addr, write);
        if a.writeback {
            self.stats.dcache.writebacks += 1;
            d.writeback = true;
        }
        if !a.hit {
            self.stats.dcache.misses += 1;
            d.dcache_miss = true;
            let (cost, l2) = self.l1_miss_cost(addr, write);
            d.l2 = l2;
            d.penalty += cost;
            if !WARMING {
                self.cycle += cost;
            }
        }
        if OBSERVED {
            self.scratch.data = Some(d);
        }
    }
}
