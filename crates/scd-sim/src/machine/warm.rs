//! The replay-driven warming engine: functional warming off the
//! execute-ahead retirement stream.
//!
//! PR 8's sampled scheduler repaired micro-architectural state with the
//! interleaved loop in `WARMING` mode — full fetch/issue/execute
//! machinery per retirement, just with the clock frozen. That caps the
//! speedup at the detailed loop's own throughput (the duty-cycle
//! ceiling documented in EXPERIMENTS.md). This module replaces the warm
//! leg with a consumer of the [`replay`](super::replay) producer's
//! record stream: the `scd-ref` ISS executes ahead at functional speed
//! while the consumer applies only *structure-content* updates — I$/
//! I-TLB touches per fetch block (through the fetch-streak collapse),
//! D$/D-TLB/L2 touches per memory record, BTB/JTE inserts and
//! direction/ITTAGE updates per branch record — through the same
//! `WARMING`-monomorphized timing twins detailed replay uses, so the
//! post-warming structure state is bit-identical to
//! [`Machine::run_warming`] by construction (`tests/warm_replay.rs`
//! proves it on full snapshots).
//!
//! The producer additionally absorbs the leg's *fast-forward* span:
//! [`Producer::fill`] runs record-free up to `record_from` and ships
//! the boundary state in [`Batch::sync`], so on multi-core hosts the
//! fast-forward of interval *k+1* overlaps the consumer's drain of
//! interval *k*'s warm records. On single-CPU hosts ([`warm_leg_sync`])
//! the producer fills batches inline on the consumer thread — no
//! pipelining, but the structure-only drain is still far cheaper than
//! the interleaved warming loop.
//!
//! Per-structure windows: a [`SamplingPlan`](crate::SamplingPlan) may
//! give the branch-predictor complex a longer warm window than the
//! caches (`PERIOD:WARMUP/BTB=..,PRED=..:MEASURE`). The leg spans the
//! *longest* window; each record computes its distance from the leg end
//! and opens a structure class's [`WarmGates`] gate only inside that
//! class's window. Architectural effects (registers, SCD state, the JTE
//! overlay backing `bop` speculation, counters, scoreboard stamps)
//! always apply — only structure touches are withheld — so a uniform
//! plan's gates are all-on from the first record and the engine stays
//! bit-identical to the detailed-loop warmer.

use super::replay::{
    panic_message, producer_loop, Batch, Down, ReplayRec, Stop, SyncArch, SyncState, WarmGates,
    CHANNEL_DEPTH,
};
use super::{Exit, Machine, ReplayMode, SimError};
use crate::config::ScdConfig;
use crate::trace::InstClass;
use crate::SimConfig;
use scd_isa::{AluOp, FpOp, Inst, Reg};
use std::sync::mpsc;

/// Compact per-instruction dispatch entry for the warming consumer,
/// precomputed alongside `StaticInfo`. The hot record classes — plain
/// ALU/FP writebacks and memory accesses, the overwhelming majority of
/// any retirement stream — are applied from this table without loading
/// the full `Inst` enum, taking its wide match, or reading the
/// `StaticInfo` row. Each field mirrors the corresponding `replay_inst`
/// arm exactly, so the fast path stays bit-identical to the slow one
/// (and therefore to [`Machine::run_warming`]).
///
/// Packed to 4 bytes on purpose: the table is indexed randomly (by the
/// record's text index) on every drained record, and at 4 B/entry even
/// a large guest text keeps it L1-resident — at the natural layout the
/// lookup was measurably memory-bound.
#[derive(Debug, Clone, Copy)]
pub(super) struct WarmInfo {
    pub(super) kind: WarmKind,
    /// Destination register index (integer or FP file per `kind`) in
    /// bits 0-6; bit 7 carries the `begin_retirement` dispatcher
    /// attribution.
    dst: u8,
    /// Result latency: the scoreboard stamp is `cycle + lat`. Loads
    /// fold the load-use penalty in; `Op` folds the mul/div latency.
    /// An (absurd) configured latency that overflows u16 demotes the
    /// instruction to `Slow`, which reads the config directly.
    lat: u16,
}

impl WarmInfo {
    #[inline]
    pub(super) fn in_dispatch(self) -> bool {
        self.dst & 0x80 != 0
    }

    #[inline]
    pub(super) fn dst(self) -> usize {
        (self.dst & 0x7f) as usize
    }

    #[inline]
    pub(super) fn lat(self) -> u64 {
        u64::from(self.lat)
    }
}

/// How the warming consumer applies one record class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum WarmKind {
    /// `wx(dst, a)` + integer scoreboard stamp.
    IntAlu,
    /// FP writeback + FP scoreboard stamp.
    FpAlu,
    /// Integer load: writeback, load counter, gated D-side timing.
    Load,
    /// FP load: writeback, load counter, gated D-side timing.
    Fld,
    /// Store or FP store: store counter, gated D-side timing.
    Store,
    /// `fence`: retirement bookkeeping only.
    Nop,
    /// Control flow, SCD, syscalls: the full `replay_one` arm.
    Slow,
}

impl WarmInfo {
    pub(super) fn of(inst: &Inst, in_dispatch: bool, cfg: &SimConfig) -> Self {
        let (kind, dst, lat) = match *inst {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::FmvXD { rd, .. } => (WarmKind::IntAlu, rd.index(), 1),
            Inst::Op { op, rd, .. } => {
                let lat = if op.is_muldiv() {
                    if matches!(op, AluOp::Mul | AluOp::Mulh | AluOp::Mulhu | AluOp::Mulw) {
                        cfg.mul_latency
                    } else {
                        cfg.div_latency
                    }
                } else {
                    1
                };
                (WarmKind::IntAlu, rd.index(), lat)
            }
            Inst::FCmp { rd, .. } | Inst::FcvtLD { rd, .. } => {
                (WarmKind::IntAlu, rd.index(), cfg.fpu_latency)
            }
            Inst::FOp { op, rd, .. } => {
                let lat = match op {
                    FpOp::FdivD | FpOp::FsqrtD => cfg.fdiv_latency,
                    _ => cfg.fpu_latency,
                };
                (WarmKind::FpAlu, rd.index(), lat)
            }
            Inst::FcvtDL { rd, .. } => (WarmKind::FpAlu, rd.index(), cfg.fpu_latency),
            Inst::FmvDX { rd, .. } => (WarmKind::FpAlu, rd.index(), 1),
            Inst::Load { rd, .. } => (WarmKind::Load, rd.index(), 1 + cfg.load_use_penalty),
            Inst::Fld { rd, .. } => (WarmKind::Fld, rd.index(), 1 + cfg.load_use_penalty),
            Inst::Store { .. } | Inst::Fsd { .. } => (WarmKind::Store, 0, 0),
            Inst::Fence => (WarmKind::Nop, 0, 0),
            _ => (WarmKind::Slow, 0, 0),
        };
        let (kind, lat) = match u16::try_from(lat) {
            Ok(l) => (kind, l),
            Err(_) => (WarmKind::Slow, 0),
        };
        WarmInfo {
            kind,
            dst: dst as u8 | if in_dispatch { 0x80 } else { 0 },
            lat,
        }
    }
}

/// What a fast-forward + warming leg did, for the sampled scheduler's
/// bookkeeping.
pub(super) struct WarmLegOut {
    /// The guest halted during the leg (in either span).
    pub(super) exit: Option<Exit>,
    /// Retirements absorbed by the record-free fast-forward span.
    pub(super) ff_retired: u64,
    /// Retirements replayed through the warming consumer.
    pub(super) warm_retired: u64,
    /// Wall time spent inside the consumer drain alone (excludes
    /// producer fill time), for warming-throughput measurement.
    pub(super) drain_wall: std::time::Duration,
}

/// Per-leg constants threaded through the batch-drain helper.
struct WarmCtl {
    scd_cfg: ScdConfig,
    nbids: usize,
    /// Retirement count at leg entry.
    n0: u64,
    /// First recorded retirement (`n0` + the fast-forward span).
    record_from: u64,
    /// Absolute retirement count the leg runs to.
    warm_end: u64,
    /// Per-structure window lengths, as distances from `warm_end`.
    cache_w: u64,
    btb_w: u64,
    pred_w: u64,
    /// Guest-output length at producer build, for rollback sync.
    out_base: usize,
    /// Whether cycle/wall watchdogs need per-record checks.
    per_rec: bool,
    cycle_budget: Option<u64>,
    wall_budget: Option<std::time::Duration>,
    wall_start: std::time::Instant,
    /// Filled in when the boundary [`SyncArch`] is adopted.
    ff_retired: u64,
    /// Accumulated consumer-drain wall time.
    drain: std::time::Duration,
}

/// What the engine loop should do after draining one batch.
enum DrainAct {
    /// Batch ran full; keep streaming.
    Continue,
    /// A `bop` speculation failed; rewind the producer to this state.
    Rollback(Box<SyncState>),
    /// The leg is over: guest exit, leg boundary (`Ok(None)`), or error.
    Done(Result<Option<Exit>, SimError>),
}

impl Machine {
    /// Adopts the producer's fast-forward boundary state, exactly as
    /// `run_fastforward` syncs its reference core back: architectural
    /// registers, PC, instruction count, guest output and SCD state,
    /// with `rop_ready` stamped at the (frozen) current cycle. The
    /// machine-side effects of every flush quantum the span crossed —
    /// the JTE flushes `run_fastforward` interleaves with its chunks —
    /// are replicated first, so the adopted `Rop` valid bits survive.
    fn adopt_sync(&mut self, sync: &SyncArch, nbids: usize) {
        let interval = self.cfg.scd.flush_interval.unwrap_or(u64::MAX);
        while self.next_flush_at < sync.next_flush_at {
            self.jte_flush();
            self.next_flush_at = self.next_flush_at.saturating_add(interval);
        }
        debug_assert_eq!(self.next_flush_at, sync.next_flush_at);
        self.regs = sync.regs;
        self.fregs = sync.fregs;
        self.pc = sync.pc;
        self.stats.instructions = sync.n;
        self.output.extend_from_slice(&sync.out);
        for (bid, s) in self.scd.iter_mut().take(nbids).enumerate() {
            let (rop_v, rop_d, rmask) = sync.scd[bid];
            s.rop_v = rop_v;
            s.rop_d = rop_d;
            s.rmask = rmask;
            s.rop_ready = self.cycle;
        }
    }

    /// Applies one hot-class record: the common prologue
    /// (`fetch_fast` + `begin_retirement`) and the matching
    /// `replay_inst` arm, driven from the compact [`WarmInfo`] table.
    /// Call-for-call identical to `replay_one::<true>` on these
    /// classes — same order, same gated structure touches, same
    /// scoreboard stamps — just without the full-width dispatch.
    #[inline(always)]
    fn warm_fast(&mut self, rec: &ReplayRec, wi: WarmInfo, gates: WarmGates, scd_cfg: &ScdConfig) {
        let pc = self.text_base + 4 * rec.idx as u64;
        debug_assert_eq!(pc, self.pc, "replay stream out of sync with consumer PC");
        if gates.cache {
            self.fetch_fast::<true>(pc);
        }
        self.begin_retirement::<false>(wi.in_dispatch(), scd_cfg);
        let dst = wi.dst();
        match wi.kind {
            WarmKind::IntAlu => {
                if dst != 0 {
                    self.regs[dst] = rec.a;
                }
                self.xready[dst] = self.cycle + wi.lat();
            }
            WarmKind::FpAlu => {
                self.fregs[dst] = rec.a;
                self.fready[dst] = self.cycle + wi.lat();
            }
            WarmKind::Load => {
                if dst != 0 {
                    self.regs[dst] = rec.a;
                }
                self.stats.loads += 1;
                if gates.cache {
                    self.data_timing::<false, true>(rec.ea, false);
                }
                self.xready[dst] = self.cycle + wi.lat();
            }
            WarmKind::Fld => {
                self.fregs[dst] = rec.a;
                self.stats.loads += 1;
                if gates.cache {
                    self.data_timing::<false, true>(rec.ea, false);
                }
                self.fready[dst] = self.cycle + wi.lat();
            }
            WarmKind::Store => {
                self.stats.stores += 1;
                if gates.cache {
                    self.data_timing::<false, true>(rec.ea, true);
                }
            }
            WarmKind::Nop => {}
            WarmKind::Slow => unreachable!("slow records take replay_one"),
        }
        self.pc = pc + 4;
    }

    /// Drains one batch through the warming twins. Shared verbatim by
    /// the threaded and inline engines so they cannot diverge.
    fn drain_warm_batch(&mut self, c: &mut WarmCtl, batch: &mut Batch) -> DrainAct {
        if let Some(sync) = batch.sync.take() {
            c.ff_retired = sync.n - c.n0;
            self.adopt_sync(&sync, c.nbids);
        }
        let mut i = 0;
        while i < batch.len {
            // Distance of the *next* retirement from the leg end; a
            // window of length W admits exactly the leg's last W
            // retirements. Every retirement shrinks the distance by
            // exactly one, so the gates are loop-invariant until the
            // nearest still-closed window opens — evaluate them once
            // per such segment instead of per record (for a uniform
            // plan the whole batch is one segment).
            let remaining = c.warm_end - self.stats.instructions;
            let gates = WarmGates {
                cache: remaining <= c.cache_w,
                btb: remaining <= c.btb_w,
                pred: remaining <= c.pred_w,
            };
            let mut span = batch.len - i;
            for w in [c.cache_w, c.btb_w, c.pred_w] {
                if remaining > w {
                    span = span.min((remaining - w) as usize);
                }
            }
            for rec in &batch.recs[i..i + span] {
                if c.per_rec {
                    if let Some(e) = self.replay_watchdogs(
                        c.warm_end,
                        c.cycle_budget,
                        c.wall_budget,
                        &c.wall_start,
                    ) {
                        return DrainAct::Done(Err(e));
                    }
                }
                let wi = self.warm_info[rec.idx as usize];
                if wi.kind != WarmKind::Slow {
                    self.warm_fast(rec, wi, gates, &c.scd_cfg);
                    continue;
                }
                let rec = *rec;
                if self.static_info[rec.idx as usize].class == InstClass::Bop {
                    if !self.replay_bop::<true>(&rec, c.nbids, &c.scd_cfg, gates) {
                        return DrainAct::Rollback(Box::new(self.sync_state(c.out_base)));
                    }
                    continue;
                }
                match self.replay_one::<true>(&rec, c.nbids, &c.scd_cfg, gates) {
                    Ok(None) => {}
                    Ok(Some(exit)) => return DrainAct::Done(Ok(Some(exit))),
                    Err(e) => return DrainAct::Done(Err(e)),
                }
            }
            i += span;
        }
        match batch.stop {
            Stop::Full => DrainAct::Continue,
            Stop::Exit => {
                // A record-phase exit carries its `ecall` record and was
                // resolved in the loop above, so reaching here means the
                // guest halted inside the fast-forward span: the adopted
                // state is final, exactly as `run_fastforward` reports
                // it (no `finalize_partial`).
                debug_assert_eq!(batch.len, 0, "record-phase exits carry their record");
                DrainAct::Done(Ok(Some(Exit {
                    code: self.regs[Reg::A0.index()],
                    output: std::mem::take(&mut self.output),
                })))
            }
            Stop::Limit => {
                let e = self
                    .replay_watchdogs(c.warm_end, c.cycle_budget, c.wall_budget, &c.wall_start)
                    .expect("producer stopped at the warm-leg boundary");
                debug_assert!(matches!(e, SimError::InstLimit { .. }));
                DrainAct::Done(Ok(None))
            }
            Stop::Err(e) => {
                let err = if self.stats.instructions < c.record_from {
                    // Fast-forward-span fault: `run_fastforward`
                    // replicates straight away, detailed-mode charging.
                    self.replicate_error::<false>(e, &c.scd_cfg)
                } else {
                    match self.replay_watchdogs(
                        c.warm_end,
                        c.cycle_budget,
                        c.wall_budget,
                        &c.wall_start,
                    ) {
                        Some(w) => w,
                        None => self.replicate_error::<true>(e, &c.scd_cfg),
                    }
                };
                DrainAct::Done(Err(err))
            }
        }
    }

    /// One fast-forward + warming leg of a sampled run: `ff` record-free
    /// retirements, then warming replay up to the absolute retirement
    /// count `warm_end`, with per-structure window lengths `(cache, btb,
    /// pred)` measured back from `warm_end`.
    ///
    /// Engine selection follows [`Machine::run`]'s replay policy: the
    /// threaded producer on pipelining hosts (or under
    /// [`Machine::force_replay`]), the inline single-thread engine
    /// otherwise — both drain through the same code and leave
    /// bit-identical state.
    pub(super) fn warm_leg(
        &mut self,
        ff: u64,
        warm_end: u64,
        windows: (u64, u64, u64),
    ) -> Result<WarmLegOut, SimError> {
        let n0 = self.stats.instructions;
        let mut ctl = WarmCtl {
            scd_cfg: self.cfg.scd,
            nbids: self.cfg.scd.branch_ids.min(super::MAX_BRANCH_IDS),
            n0,
            record_from: n0 + ff,
            warm_end,
            cache_w: windows.0,
            btb_w: windows.1,
            pred_w: windows.2,
            out_base: self.output.len(),
            per_rec: self.cycle_budget.is_some() || self.wall_budget.is_some(),
            cycle_budget: self.cycle_budget,
            wall_budget: self.wall_budget,
            wall_start: std::time::Instant::now(),
            ff_retired: 0,
            drain: std::time::Duration::ZERO,
        };
        let threaded = match self.replay {
            ReplayMode::Off => false,
            ReplayMode::Auto => super::host_can_pipeline(),
            ReplayMode::Force => true,
        };
        let result = if threaded {
            self.warm_leg_threaded(&mut ctl)?
        } else {
            self.warm_leg_sync(&mut ctl)?
        };
        Ok(WarmLegOut {
            exit: result,
            ff_retired: ctl.ff_retired,
            warm_retired: self.stats.instructions - n0 - ctl.ff_retired,
            drain_wall: ctl.drain,
        })
    }

    /// The pipelined engine: the producer fast-forwards and records on
    /// its own thread while the consumer drains. Mirrors
    /// [`Machine::run_replay`]'s loop, rollback protocol and teardown.
    fn warm_leg_threaded(&mut self, ctl: &mut WarmCtl) -> Result<Option<Exit>, SimError> {
        let producer = self.make_producer(ctl.warm_end, ctl.record_from);
        let (work_tx, work_rx) = mpsc::sync_channel::<Box<Batch>>(CHANNEL_DEPTH);
        let (down_tx, down_rx) = mpsc::channel::<Down>();
        let thread = std::thread::spawn(move || producer_loop(producer, work_tx, down_rx));

        let mut expected_gen = 0u32;
        let mut result: Option<Result<Option<Exit>, SimError>> = None;
        while result.is_none() {
            let mut batch = match work_rx.recv() {
                Ok(b) => b,
                // Producer panicked; the join below contains it.
                Err(_) => break,
            };
            if batch.gen != expected_gen {
                let _ = down_tx.send(Down::Recycle(batch, self.stats.instructions));
                continue;
            }
            let t0 = std::time::Instant::now();
            let act = self.drain_warm_batch(ctl, &mut batch);
            ctl.drain += t0.elapsed();
            if matches!(act, DrainAct::Rollback(_)) {
                expected_gen = expected_gen.wrapping_add(1);
            }
            batch.len = 0;
            match act {
                DrainAct::Continue => {
                    let _ = down_tx.send(Down::Recycle(batch, self.stats.instructions));
                }
                DrainAct::Rollback(st) => {
                    let _ = down_tx.send(Down::Rollback(st));
                    let _ = down_tx.send(Down::Recycle(batch, self.stats.instructions));
                }
                DrainAct::Done(r) => {
                    let _ = down_tx.send(Down::Recycle(batch, self.stats.instructions));
                    result = Some(r);
                }
            }
        }

        self.flush_fetch_streak();
        let _ = down_tx.send(Down::Stop(self.stats.instructions));
        while work_rx.recv().is_ok() {}
        let core = match thread.join() {
            Ok(core) => core,
            Err(payload) => {
                // Same containment as `run_replay`: the producer owned
                // the guest memory, so the machine must be discarded.
                self.finalize_partial();
                return Err(SimError::ProducerPanic {
                    message: panic_message(&*payload),
                });
            }
        };
        self.take_back_core(core);
        match result {
            Some(r) => r,
            None => unreachable!("warm producer disconnected without a terminal batch"),
        }
    }

    /// The single-thread engine for hosts with no core to spare: the
    /// producer fills batches inline between drains. No pipelining, but
    /// the structure-only drain still beats the interleaved warming
    /// loop, and the batch/rollback protocol is byte-for-byte the
    /// threaded one's.
    fn warm_leg_sync(&mut self, ctl: &mut WarmCtl) -> Result<Option<Exit>, SimError> {
        let mut p = self.make_producer(ctl.warm_end, ctl.record_from);
        let mut batch = Box::new(Batch::new());
        let result = loop {
            batch.gen = p.gen;
            batch.stop = p.fill(&mut batch);
            let t0 = std::time::Instant::now();
            let act = self.drain_warm_batch(ctl, &mut batch);
            ctl.drain += t0.elapsed();
            match act {
                DrainAct::Continue => {
                    batch.len = 0;
                    p.prune_undo(self.stats.instructions);
                }
                DrainAct::Rollback(st) => p.rollback(&st),
                DrainAct::Done(r) => break r,
            }
        };
        self.flush_fetch_streak();
        p.unwind_to(self.stats.instructions);
        self.take_back_core(p.core);
        result
    }

    /// Runs warming replay until `max_insts` total retirements: the
    /// replay-driven equivalent of [`Machine::run_warming`], leaving
    /// bit-identical machine state (same `Exit` / `InstLimit` contract).
    /// The sampled scheduler drives [`Machine::warm_leg`] directly; this
    /// entry point serves warming-throughput measurement and the
    /// bit-identity tests.
    ///
    /// # Errors
    /// `InstLimit` when the budget runs out first — the normal
    /// "warm leg complete" outcome, as with `run_warming`.
    pub fn run_warming_replay(&mut self, max_insts: u64) -> Result<Exit, SimError> {
        let out = self.warm_leg(0, max_insts, (u64::MAX, u64::MAX, u64::MAX))?;
        match out.exit {
            Some(e) => Ok(e),
            None => Err(SimError::InstLimit { limit: max_insts }),
        }
    }

    /// Measurement hook for the benchmark harness: runs one
    /// fast-forward + warming leg (`ff` record-free retirements, then
    /// warming replay up to `warm_end` total retirements, with
    /// per-structure windows `(cache, btb, pred)` measured back from
    /// `warm_end`) and reports `(warm_retired, drain_seconds)` — the
    /// wall time spent inside the consumer drain alone. On a pipelining
    /// host the drain is the leg's *marginal* warming cost: producer
    /// fill overlaps fast-forward work the sampled schedule has to do
    /// anyway.
    ///
    /// # Errors
    /// Propagates watchdog/guest errors; hitting `warm_end` is the
    /// normal outcome and returns `Ok` (as does an early guest exit,
    /// with fewer retirements).
    #[doc(hidden)]
    pub fn warm_bench(
        &mut self,
        ff: u64,
        warm_end: u64,
        windows: (u64, u64, u64),
    ) -> Result<(u64, f64), SimError> {
        let out = self.warm_leg(ff, warm_end, windows)?;
        Ok((out.warm_retired, out.drain_wall.as_secs_f64()))
    }
}
