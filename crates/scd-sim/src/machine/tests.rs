//! Machine-level unit tests: functional ISA semantics, predictor
//! behavior, the SCD fast path, dual-issue pairing rules, watchdogs,
//! and checkpoint/resume. These exercise the stage modules through the
//! whole [`Machine`], which is the contract that matters — stage
//! boundaries are an internal detail.

use super::execute::alu;
use super::*;
use crate::snapshot::{Snapshot, SnapshotError};
use scd_isa::{AluOp, Asm, LoadOp, Rounding};

fn run_asm(build: impl FnOnce(&mut Asm)) -> (Exit, SimStats) {
    let mut a = Asm::new(0x1_0000);
    build(&mut a);
    let p = a.finish().expect("assemble");
    let mut m = Machine::new(SimConfig::embedded_a5(), &p);
    m.map("scratch", 0x10_0000, 0x1000);
    let exit = m.run(1_000_000).expect("run");
    (exit, m.stats.clone())
}

fn halt(a: &mut Asm, code_reg: Reg) {
    a.mv(Reg::A0, code_reg);
    a.li(Reg::A7, 0);
    a.ecall();
}

#[test]
fn arithmetic_loop() {
    let (exit, stats) = run_asm(|a| {
        a.li(Reg::A0, 0);
        a.li(Reg::T0, 0);
        a.li(Reg::T1, 100);
        a.label("loop");
        a.add(Reg::A0, Reg::A0, Reg::T0);
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::T1, "loop");
        halt(a, Reg::A0);
    });
    assert_eq!(exit.code, 4950);
    assert!(stats.instructions > 300);
    assert!(stats.cycles >= stats.instructions);
}

#[test]
fn memory_roundtrip() {
    let (exit, _) = run_asm(|a| {
        a.li(Reg::T0, 0x10_0000);
        a.li(Reg::T1, -12345);
        a.sd(Reg::T1, 8, Reg::T0);
        a.ld(Reg::T2, 8, Reg::T0);
        a.sub(Reg::A1, Reg::T2, Reg::T1); // 0 if equal
        halt(a, Reg::A1);
    });
    assert_eq!(exit.code, 0);
}

#[test]
fn word_ops_sign_extend() {
    let (exit, _) = run_asm(|a| {
        a.li(Reg::T0, 0x7fff_ffff);
        a.opi(AluOp::Addw, Reg::T1, Reg::T0, 1); // overflows to i32::MIN
        halt(a, Reg::T1);
    });
    assert_eq!(exit.code as i64, i32::MIN as i64);
}

#[test]
fn fp_pipeline() {
    let (exit, _) = run_asm(|a| {
        a.li(Reg::T0, 9);
        a.fcvt_d_l(scd_isa::FReg::FT1, Reg::T0);
        a.fsqrt(scd_isa::FReg::FT2, scd_isa::FReg::FT1);
        a.fcvt_l_d(Reg::A1, scd_isa::FReg::FT2, Rounding::Rtz);
        halt(a, Reg::A1);
    });
    assert_eq!(exit.code, 3);
}

#[test]
fn call_return_uses_ras() {
    let (exit, stats) = run_asm(|a| {
        a.li(Reg::A1, 0);
        a.li(Reg::T1, 50);
        a.label("loop");
        a.call("inc");
        a.bne(Reg::A1, Reg::T1, "loop");
        halt(a, Reg::A1);
        a.label("inc");
        a.addi(Reg::A1, Reg::A1, 1);
        a.ret();
    });
    assert_eq!(exit.code, 50);
    // After warm-up the RAS should predict returns near-perfectly.
    assert!(stats.ret.executed >= 50);
    assert!(stats.ret.mispredicted <= 2, "return mispredictions: {}", stats.ret.mispredicted);
}

#[test]
fn branch_predictor_learns_loop() {
    let (_, stats) = run_asm(|a| {
        a.li(Reg::T0, 0);
        a.li(Reg::T1, 1000);
        a.label("loop");
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::T1, "loop");
        halt(a, Reg::T0);
    });
    assert!(stats.cond.executed >= 1000);
    // A steady loop branch should be near-perfectly predicted.
    assert!(stats.cond.mispredicted < 20, "loop mispredictions: {}", stats.cond.mispredicted);
}

/// A tiny dispatcher: two "bytecodes" (0 and 1) handled in a loop.
/// Shared by the SCD fast-path test and the checkpoint tests (it
/// exercises every structure a snapshot must carry).
fn build_dispatcher(a: &mut Asm) {
    // Bytecode array at 0x10_0000: alternating 0,1 x 100, terminator 2.
    a.li(Reg::S1, 0x10_0000);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, 100);
    a.label("fill");
    a.andi(Reg::T2, Reg::T0, 1);
    a.slli(Reg::T3, Reg::T0, 2);
    a.add(Reg::T3, Reg::T3, Reg::S1);
    a.sw(Reg::T2, 0, Reg::T3);
    a.addi(Reg::T0, Reg::T0, 1);
    a.bne(Reg::T0, Reg::T1, "fill");
    // terminator opcode 2 at index 100
    a.li(Reg::T2, 2);
    a.slli(Reg::T3, Reg::T0, 2);
    a.add(Reg::T3, Reg::T3, Reg::S1);
    a.sw(Reg::T2, 0, Reg::T3);

    // Interpreter setup: mask = 0x3f, a2 = counter
    a.li(Reg::T0, 0x3f);
    a.setmask(0, Reg::T0);
    a.li(Reg::A2, 0);
    a.la(Reg::S2, "jt");

    a.label("dispatch");
    a.load_op(LoadOp::Lw, 0, Reg::A0, 0, Reg::S1);
    a.addi(Reg::S1, Reg::S1, 4);
    a.bop(0);
    // slow path: bound check + table jump
    a.andi(Reg::A1, Reg::A0, 0x3f);
    a.sltiu(Reg::T3, Reg::A1, 3);
    a.beqz(Reg::T3, "bad");
    a.slli(Reg::T3, Reg::A1, 3);
    a.add(Reg::T3, Reg::T3, Reg::S2);
    a.ld(Reg::T4, 0, Reg::T3);
    a.jru(0, Reg::T4);

    a.label("h0");
    a.addi(Reg::A2, Reg::A2, 1);
    a.j("dispatch");
    a.label("h1");
    a.addi(Reg::A2, Reg::A2, 2);
    a.j("dispatch");
    a.label("h2");
    a.jte_flush();
    halt(a, Reg::A2);
    a.label("bad");
    a.inst(Inst::Ebreak);

    a.ro_label("jt");
    a.ro_addr("h0");
    a.ro_addr("h1");
    a.ro_addr("h2");
}

#[test]
fn scd_fast_path_basic() {
    let (exit, stats) = run_asm(build_dispatcher);
    // 50 zeros (+1 each) and 50 ones (+2 each) = 150
    assert_eq!(exit.code, 150);
    assert_eq!(stats.bop_executed, 101);
    // First occurrence of each opcode takes the slow path; the
    // remaining 98 dispatches of opcodes 0/1 hit.
    assert_eq!(stats.bop_hits, 98);
    assert_eq!(stats.jru_executed, 3);
    assert_eq!(stats.btb.jte_inserts, 3);
    assert_eq!(stats.btb.jte_flushes, 1);
}

#[test]
fn scd_disabled_falls_through() {
    let cfg = SimConfig::embedded_a5().without_scd();
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::T0, 0x3f);
    a.setmask(0, Reg::T0);
    a.bop(0); // must fall through
    a.li(Reg::A0, 7);
    a.li(Reg::A7, 0);
    a.ecall();
    let p = a.finish().unwrap();
    let mut m = Machine::new(cfg, &p);
    let exit = m.run(100).unwrap();
    assert_eq!(exit.code, 7);
    assert_eq!(m.stats.bop_hits, 0);
}

#[test]
fn putchar_collects_output() {
    let (exit, _) = run_asm(|a| {
        a.li(Reg::A0, b'h' as i64);
        a.li(Reg::A7, 1);
        a.ecall();
        a.li(Reg::A0, b'i' as i64);
        a.ecall();
        a.li(Reg::A0, 0);
        a.li(Reg::A7, 0);
        a.ecall();
    });
    assert_eq!(exit.output, b"hi");
}

#[test]
fn inst_limit_errors() {
    let mut a = Asm::new(0x1_0000);
    a.label("spin");
    a.j("spin");
    let p = a.finish().unwrap();
    let mut m = Machine::new(SimConfig::embedded_a5(), &p);
    assert!(matches!(m.run(100), Err(SimError::InstLimit { .. })));
}

#[test]
fn mem_fault_reported() {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::T0, 0x9999_0000);
    a.ld(Reg::T1, 0, Reg::T0);
    let p = a.finish().unwrap();
    let mut m = Machine::new(SimConfig::embedded_a5(), &p);
    match m.run(100) {
        Err(SimError::Mem { fault, .. }) => assert_eq!(fault.addr, 0x9999_0000),
        other => panic!("expected memory fault, got {other:?}"),
    }
}

#[test]
fn alu_division_edge_cases() {
    assert_eq!(alu(AluOp::Div, 7, 0), u64::MAX);
    assert_eq!(alu(AluOp::Div, i64::MIN as u64, u64::MAX), i64::MIN as u64);
    assert_eq!(alu(AluOp::Rem, 7, 0), 7);
    assert_eq!(alu(AluOp::Rem, i64::MIN as u64, u64::MAX), 0);
    assert_eq!(alu(AluOp::Divu, 7, 0), u64::MAX);
    assert_eq!(alu(AluOp::Remu, 7, 0), 7);
    assert_eq!(alu(AluOp::Mulh, u64::MAX, u64::MAX), 0); // (-1)*(-1) >> 64
    assert_eq!(alu(AluOp::Mulhu, u64::MAX, 2), 1);
}

// ---- dual-issue pairing rules ----

/// Runs `build` under an A5 core widened to `width` issue slots and
/// returns the cycle count, so tests can compare single- vs
/// dual-issue timing of the same program.
fn cycles_at_width(width: usize, build: impl Fn(&mut Asm)) -> u64 {
    let mut a = Asm::new(0x1_0000);
    build(&mut a);
    halt(&mut a, Reg::ZERO);
    let p = a.finish().expect("assemble");
    let mut cfg = SimConfig::embedded_a5();
    cfg.issue_width = width;
    let mut m = Machine::new(cfg, &p);
    m.map("scratch", 0x10_0000, 0x1000);
    m.run(1_000_000).expect("run");
    m.stats.cycles
}

const DUAL_N: usize = 64;

#[test]
fn dual_issue_pairs_independent_alu_ops() {
    let regs = [Reg::T0, Reg::T1, Reg::T2, Reg::T3];
    let build = |a: &mut Asm| {
        for i in 0..DUAL_N {
            a.addi(regs[i % regs.len()], Reg::ZERO, i as i64);
        }
    };
    let single = cycles_at_width(1, build);
    let dual = cycles_at_width(2, build);
    // Every other instruction rides in the second slot: the block
    // roughly halves.
    assert!(
        single - dual >= (DUAL_N / 2 - 6) as u64,
        "independent ALU ops should pair: single {single}, dual {dual}"
    );
}

#[test]
fn dual_issue_raw_hazard_blocks_pairing() {
    let build = |a: &mut Asm| {
        a.addi(Reg::T0, Reg::ZERO, 0);
        for _ in 0..DUAL_N {
            a.addi(Reg::T0, Reg::T0, 1); // consumes the previous dest
        }
    };
    let single = cycles_at_width(1, build);
    let dual = cycles_at_width(2, build);
    // A dependent chain gains nothing from the second slot (the halt
    // epilogue may pair, hence the tiny slack).
    assert!(single - dual <= 2, "RAW chain must not pair: single {single}, dual {dual}");
}

#[test]
fn dual_issue_never_pairs_two_memory_ops() {
    let regs = [Reg::T1, Reg::T2, Reg::T3];
    let build = |a: &mut Asm| {
        a.li(Reg::T0, 0x10_0000);
        a.sd(Reg::ZERO, 0, Reg::T0);
        for i in 0..DUAL_N {
            // Alternate loads and stores: all independent, but two
            // memory ops share the single D-cache port.
            if i % 4 == 3 {
                a.sd(Reg::T1, 0, Reg::T0);
            } else {
                a.ld(regs[i % regs.len()], 0, Reg::T0);
            }
        }
    };
    let single = cycles_at_width(1, build);
    let dual = cycles_at_width(2, build);
    assert!(
        single - dual <= 2,
        "back-to-back memory ops must not pair: single {single}, dual {dual}"
    );
}

/// A dual-issue machine with an empty program, for driving
/// [`Machine::issue`] directly. End-to-end cycle counts can't
/// isolate a single pairing rule: whenever one instruction is
/// kicked out of the second slot, its successor slides in, so the
/// loop's steady-state cost is unchanged.
fn issue_fixture() -> Machine {
    let mut a = Asm::new(0x1_0000);
    halt(&mut a, Reg::ZERO);
    let p = a.finish().expect("assemble");
    let mut cfg = SimConfig::embedded_a5();
    cfg.issue_width = 2;
    Machine::new(cfg, &p)
}

#[test]
fn dual_issue_fp_source_hazard_blocks_pairing() {
    use scd_isa::{FReg, FpOp};
    let fmv = |rd: u8| Inst::FmvDX { rd: FReg::new(rd), rs1: Reg::T0 };
    let fadd = |rs: u8| Inst::FOp {
        op: FpOp::FaddD,
        rd: FReg::new(2),
        rs1: FReg::new(rs),
        rs2: FReg::new(rs),
    };

    // An FOp with independent sources rides in the second slot.
    let mut m = issue_fixture();
    m.issue(&StaticInfo::of(&fmv(1)));
    assert_eq!(m.issued_this_cycle, 1);
    let c = m.cycle;
    m.issue(&StaticInfo::of(&fadd(3)));
    assert_eq!((m.issued_this_cycle, m.cycle), (2, c), "independent FP op should pair");

    // Reading the FP register the previous instruction wrote must
    // push the consumer to the next cycle.
    let mut m = issue_fixture();
    m.issue(&StaticInfo::of(&fmv(1)));
    let c = m.cycle;
    m.issue(&StaticInfo::of(&fadd(1)));
    assert_eq!(m.issued_this_cycle, 1, "FP source hazard must block pairing");
    assert_eq!(m.cycle, c + 1);

    // The single-source arm (fmv.x.d) honors the same rule.
    let mut m = issue_fixture();
    m.issue(&StaticInfo::of(&fmv(1)));
    m.issue(&StaticInfo::of(&Inst::FmvXD { rd: Reg::T1, rs1: FReg::new(1) }));
    assert_eq!(m.issued_this_cycle, 1, "fmv.x.d reading prev FP dest must not pair");
    let mut m = issue_fixture();
    m.issue(&StaticInfo::of(&fmv(1)));
    m.issue(&StaticInfo::of(&Inst::FmvXD { rd: Reg::T1, rs1: FReg::new(3) }));
    assert_eq!(m.issued_this_cycle, 2, "fmv.x.d with an unrelated source pairs");
}

#[test]
fn dual_issue_width_caps_group_at_two() {
    let addi = |rd: Reg| Inst::OpImm { op: AluOp::Add, rd, rs1: Reg::ZERO, imm: 1 };
    let mut m = issue_fixture();
    m.issue(&StaticInfo::of(&addi(Reg::T0)));
    m.issue(&StaticInfo::of(&addi(Reg::T1)));
    assert_eq!(m.issued_this_cycle, 2);
    let c = m.cycle;
    m.issue(&StaticInfo::of(&addi(Reg::T2)));
    assert_eq!((m.issued_this_cycle, m.cycle), (1, c + 1), "third op starts a new group");
}

// ---- watchdog ----

#[test]
fn cycle_watchdog_catches_livelock() {
    let mut a = Asm::new(0x1_0000);
    a.label("spin");
    a.j("spin");
    let p = a.finish().unwrap();
    let mut m = Machine::new(SimConfig::embedded_a5(), &p);
    m.set_cycle_budget(10_000);
    match m.run(u64::MAX) {
        Err(SimError::Watchdog { kind: WatchdogKind::Cycles, instructions, cycles }) => {
            assert!(cycles >= 10_000, "budget not exhausted: {cycles}");
            assert!(instructions > 0);
            // Stats are finalized for the partial run.
            assert_eq!(m.stats.cycles, cycles);
            assert_eq!(m.stats.instructions, instructions);
        }
        other => panic!("expected cycle watchdog, got {other:?}"),
    }
}

#[test]
fn wall_watchdog_fires() {
    let mut a = Asm::new(0x1_0000);
    a.label("spin");
    a.j("spin");
    let p = a.finish().unwrap();
    let mut m = Machine::new(SimConfig::embedded_a5(), &p);
    m.set_wall_budget(std::time::Duration::ZERO);
    assert!(matches!(
        m.run(u64::MAX),
        Err(SimError::Watchdog { kind: WatchdogKind::WallClock, .. })
    ));
}

// ---- checkpoint / resume ----

fn dispatcher_machine(p: &scd_isa::Program) -> Machine {
    let mut m = Machine::new(SimConfig::embedded_a5(), p);
    m.map("scratch", 0x10_0000, 0x1000);
    m
}

#[test]
fn checkpoint_resume_reproduces_run_exactly() {
    let mut a = Asm::new(0x1_0000);
    build_dispatcher(&mut a);
    let p = a.finish().expect("assemble");

    // Reference: the uninterrupted run.
    let mut whole = dispatcher_machine(&p);
    let exit_whole = whole.run(1_000_000).expect("run");

    // Chunked: stop every 117 instructions, snapshot through the
    // byte codec, restore into a FRESH machine, continue.
    let mut m = dispatcher_machine(&p);
    let mut limit = 117;
    let exit_chunked = loop {
        match m.run(limit) {
            Ok(exit) => break exit,
            Err(SimError::InstLimit { .. }) => {
                let bytes = m.snapshot().to_bytes();
                let snap = Snapshot::from_bytes(&bytes).expect("decode");
                let mut fresh = dispatcher_machine(&p);
                fresh.restore(&snap).expect("restore");
                m = fresh;
                limit += 117;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    };

    assert_eq!(exit_whole.code, exit_chunked.code);
    assert_eq!(exit_whole.output, exit_chunked.output);
    // The whole point: SimStats (cycles, every counter) bit-identical.
    assert_eq!(whole.stats, m.stats);
}

/// A checkpoint taken mid-run in replay mode, at an instruction count
/// that is *not* a multiple of [`replay::REPLAY_BATCH`], must restore
/// and continue to the same exit and bit-identical `SimStats` as the
/// uninterrupted run. The stop point lands just past a batch boundary,
/// so the producer is abandoned mid-batch and rebuilt from the restored
/// architectural state — the contract that makes snapshots compose with
/// execute-ahead.
#[test]
fn checkpoint_across_replay_batch_boundary() {
    let mut a = Asm::new(0x1_0000);
    build_dispatcher(&mut a);
    let p = a.finish().expect("assemble");

    let replay_machine = |p| {
        let mut m = dispatcher_machine(p);
        m.disable_invariants();
        m.force_replay();
        m
    };

    // Reference: the uninterrupted replay run.
    let mut whole = replay_machine(&p);
    let exit_whole = whole.run(1_000_000).expect("run");

    // Interrupted: stop just past the first replay-batch boundary
    // (1024 records), snapshot through the byte codec, restore into a
    // fresh machine, finish.
    let stop = replay::REPLAY_BATCH as u64 + 50;
    let mut m = replay_machine(&p);
    match m.run(stop) {
        Err(SimError::InstLimit { .. }) => {}
        other => panic!("the dispatcher must outlive the stop point, got {other:?}"),
    }
    assert_eq!(m.stats.instructions, stop);
    let bytes = m.snapshot().to_bytes();
    let snap = Snapshot::from_bytes(&bytes).expect("decode");
    let mut resumed = replay_machine(&p);
    resumed.restore(&snap).expect("restore");
    let exit_resumed = resumed.run(1_000_000).expect("resumed run");

    assert_eq!(exit_whole.code, exit_resumed.code);
    assert_eq!(exit_whole.output, exit_resumed.output);
    assert_eq!(whole.stats, resumed.stats);
}

/// Regression: a panic on the execute-ahead producer thread used to
/// re-panic in the consumer's `thread.join().expect(..)`, crossing the
/// API boundary as an unwind. It must surface as the typed
/// [`SimError::ProducerPanic`] instead, with the payload preserved, and
/// the partial stats finalized.
#[test]
fn replay_producer_panic_is_a_typed_error() {
    let mut a = Asm::new(0x1_0000);
    build_dispatcher(&mut a);
    let p = a.finish().expect("assemble");
    let mut m = dispatcher_machine(&p);
    m.disable_invariants();
    m.force_replay();
    m.inject_replay_producer_panic();
    match m.run(1_000_000) {
        Err(SimError::ProducerPanic { message }) => {
            assert!(
                message.contains("test-injected"),
                "panic payload should survive the join: {message}"
            );
        }
        other => panic!("expected ProducerPanic, got {other:?}"),
    }
    // The error path finalized the partial run instead of leaving the
    // stats mid-flight; a dead producer means nothing retired.
    assert_eq!(m.stats.instructions, 0);
}

/// Regression: a checkpoint whose *byte framing* is intact but whose
/// word stream is short (truncated words, passing fingerprint) used to
/// panic inside `Cursor::next` during restore. It must surface as the
/// documented [`SnapshotError::Format`] instead.
#[test]
fn restore_rejects_truncated_word_stream() {
    let mut a = Asm::new(0x1_0000);
    build_dispatcher(&mut a);
    let p = a.finish().expect("assemble");
    let mut m = dispatcher_machine(&p);
    assert!(matches!(m.run(500), Err(SimError::InstLimit { .. })));

    let mut snap = m.snapshot();
    snap.words.truncate(snap.words.len() / 2);
    // Round-trip through the byte codec: the file is well-formed and the
    // fingerprint (config + program only) still matches.
    let snap = Snapshot::from_bytes(&snap.to_bytes()).expect("framing is intact");
    let mut fresh = dispatcher_machine(&p);
    assert!(matches!(fresh.restore(&snap), Err(SnapshotError::Format(_))));
}

#[test]
fn restore_rejects_wrong_program() {
    let mut a = Asm::new(0x1_0000);
    a.label("spin");
    a.j("spin");
    let p1 = a.finish().unwrap();
    let mut b = Asm::new(0x1_0000);
    b.nop();
    b.label("spin");
    b.j("spin");
    let p2 = b.finish().unwrap();
    let m1 = Machine::new(SimConfig::embedded_a5(), &p1);
    let snap = m1.snapshot();
    let mut m2 = Machine::new(SimConfig::embedded_a5(), &p2);
    assert!(matches!(m2.restore(&snap), Err(SnapshotError::Fingerprint { .. })));
}

#[test]
fn restore_rejects_missing_segment() {
    let mut a = Asm::new(0x1_0000);
    a.label("spin");
    a.j("spin");
    let p = a.finish().unwrap();
    let mut m1 = Machine::new(SimConfig::embedded_a5(), &p);
    m1.map("scratch", 0x10_0000, 0x1000);
    let snap = m1.snapshot();
    let mut m2 = Machine::new(SimConfig::embedded_a5(), &p); // no scratch
    assert!(matches!(m2.restore(&snap), Err(SnapshotError::Format(_))));
}
