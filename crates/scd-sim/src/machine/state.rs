//! Run/exit types, guest annotations, per-PC profiling, and the
//! checkpoint snapshot/restore implementation — everything about
//! describing and persisting a [`Machine`]'s state rather than
//! advancing it.

use super::{Machine, Scratch};
use crate::mem::MemFault;
use crate::snapshot::{self, Cursor, Snapshot, SnapshotError};
use scd_isa::Reg;

/// Guest-binary metadata used for statistics attribution and VBBI.
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// PC ranges counted as dispatcher code (half-open), sorted.
    pub dispatch_ranges: Vec<(u64, u64)>,
    /// PCs of the dispatch indirect jumps (the `jmp`/`jru` of Fig. 1/4).
    pub dispatch_jumps: Vec<u64>,
    /// VBBI hint registrations: on the listed jump PCs the BTB is indexed
    /// by hash(PC, masked hint-register value).
    pub vbbi_hints: Vec<VbbiHint>,
}

impl Annotations {
    /// Sorts internal tables; call after populating the fields.
    pub fn normalize(&mut self) {
        self.dispatch_ranges.sort_unstable();
        self.dispatch_jumps.sort_unstable();
        self.vbbi_hints.sort_unstable_by_key(|h| h.jump_pc);
    }

    /// Whether `pc` lies inside any (normalized) dispatcher range. Only
    /// consulted when the static side-table is (re)built; the hot path
    /// reads the precomputed per-instruction bit instead.
    pub fn contains_dispatch(&self, pc: u64) -> bool {
        let i = self.dispatch_ranges.partition_point(|&(_, end)| end <= pc);
        self.dispatch_ranges.get(i).is_some_and(|&(start, _)| pc >= start)
    }
}

/// One VBBI hint registration (Section II-A / reference \[9\] in the paper).
#[derive(Debug, Clone, Copy)]
pub struct VbbiHint {
    /// PC of the indirect jump to predict with value-based indexing.
    pub jump_pc: u64,
    /// Register whose value correlates with the target (the opcode).
    pub hint_reg: Reg,
    /// Mask applied to the hint value.
    pub mask: u64,
}

/// Why a simulation run ended abnormally.
#[derive(Debug)]
pub enum SimError {
    /// Memory fault at `pc`.
    Mem {
        /// PC of the faulting instruction.
        pc: u64,
        /// The underlying access fault.
        fault: MemFault,
    },
    /// PC left the text section.
    PcOutOfRange {
        /// The runaway PC value.
        pc: u64,
    },
    /// The instruction-count budget was exhausted.
    InstLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// The guest executed `ebreak` (guest-side assertion failure).
    Break {
        /// PC of the `ebreak`.
        pc: u64,
    },
    /// A watchdog budget expired (see [`Machine::set_cycle_budget`] and
    /// [`Machine::set_wall_budget`]). Statistics are finalized for the
    /// partial run before this is returned.
    Watchdog {
        /// Which budget fired.
        kind: WatchdogKind,
        /// Instructions retired when the watchdog fired.
        instructions: u64,
        /// Simulated cycles elapsed when the watchdog fired.
        cycles: u64,
    },
    /// The execute-ahead replay producer thread panicked. The panic is
    /// contained on the producer thread and surfaced here as a typed
    /// error instead of re-panicking in the consumer's join, so one bad
    /// cell cannot abort a whole batch driver. The producer owned the
    /// guest memory when it died, so the machine's memory contents are
    /// lost: discard the machine and rebuild; only `stats` (finalized
    /// for the partial run) remain meaningful.
    ProducerPanic {
        /// The producer's panic payload, when it was a string.
        message: String,
    },
}

/// Which watchdog budget expired.
///
/// Every loop iteration of [`Machine::run`] retires exactly one
/// instruction, so a guest that retires instructions without making
/// progress (a livelock: an interpreter loop that never reaches its
/// exit `ecall`) eventually exhausts the cycle budget; a simulator-side
/// hang would exhaust the wall-clock budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogKind {
    /// The simulated-cycle budget was exhausted.
    Cycles,
    /// The host wall-clock budget was exhausted.
    WallClock,
}

impl std::fmt::Display for WatchdogKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WatchdogKind::Cycles => "cycle",
            WatchdogKind::WallClock => "wall-clock",
        })
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Mem { pc, fault } => write!(f, "at pc {pc:#x}: {fault}"),
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc:#x} outside text section"),
            SimError::InstLimit { limit } => write!(f, "instruction limit {limit} exhausted"),
            SimError::Break { pc } => write!(f, "ebreak at pc {pc:#x}"),
            SimError::Watchdog { kind, instructions, cycles } => write!(
                f,
                "{kind} watchdog fired after {instructions} instructions / {cycles} cycles"
            ),
            SimError::ProducerPanic { message } => {
                write!(f, "execute-ahead replay producer panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Successful run result.
#[derive(Debug, PartialEq, Eq)]
pub struct Exit {
    /// Value of `a0` at the halting `ecall`.
    pub code: u64,
    /// Bytes written through the putchar ecall.
    pub output: Vec<u8>,
}

/// Per-static-instruction profile collected by
/// [`Machine::enable_profiling`].
#[derive(Debug, Clone)]
pub struct Profile {
    pub(super) text_base: u64,
    pub(super) insts: Vec<u64>,
    pub(super) cycles: Vec<u64>,
}

impl Profile {
    /// Retired count for the instruction at `pc`.
    pub fn insts_at(&self, pc: u64) -> u64 {
        self.insts.get(((pc - self.text_base) / 4) as usize).copied().unwrap_or(0)
    }

    /// Cycles attributed to the instruction at `pc` (issue slot plus any
    /// stall it caused).
    pub fn cycles_at(&self, pc: u64) -> u64 {
        self.cycles.get(((pc - self.text_base) / 4) as usize).copied().unwrap_or(0)
    }

    /// The `n` hottest instructions by attributed cycles:
    /// `(pc, cycles, retired)`.
    pub fn hottest(&self, n: usize) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = self
            .cycles
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.text_base + 4 * i as u64, c, self.insts[i]))
            .collect();
        v.sort_by_key(|&(_, c, _)| std::cmp::Reverse(c));
        v.truncate(n);
        v
    }

    /// Total cycles attributed over a half-open PC range.
    pub fn cycles_in_range(&self, start: u64, end: u64) -> u64 {
        let a = ((start.saturating_sub(self.text_base)) / 4) as usize;
        let b = (((end.saturating_sub(self.text_base)) / 4) as usize).min(self.cycles.len());
        self.cycles[a.min(b)..b].iter().sum()
    }
}

// ---- checkpoint / resume ----

impl Machine {
    /// Identifies the (config, program) pair a snapshot belongs to, so a
    /// restore into a differently-built machine is rejected instead of
    /// silently misinterpreting the word stream.
    fn fingerprint(&self) -> u64 {
        let mut h = snapshot::fnv1a(snapshot::FNV_OFFSET, format!("{:?}", self.cfg).as_bytes());
        h = snapshot::fnv1a(h, &self.text_base.to_le_bytes());
        h = snapshot::fnv1a(h, &self.text_end.to_le_bytes());
        snapshot::fnv1a(h, &(self.insts.len() as u64).to_le_bytes())
    }

    /// Captures the complete machine state — architectural (registers,
    /// PC, memory, guest output) and micro-architectural (caches, TLBs,
    /// predictors, BTB/JTE, SCD registers, pipeline scoreboard, and all
    /// statistics) — such that [`Machine::restore`] followed by `run`
    /// reproduces the uninterrupted run bit for bit, stats included.
    ///
    /// Not captured: trace sinks, the stat self-checker, profiling
    /// buffers, fault plans and watchdog budgets. Re-arm those on the
    /// restored machine if needed.
    pub fn snapshot(&self) -> Snapshot {
        let mut w = Vec::new();
        w.extend_from_slice(&self.regs);
        w.extend_from_slice(&self.fregs);
        w.push(self.pc);
        w.push(self.cycle);
        // Entry 32 of the ready arrays is the constant-zero scoreboard
        // sentinel — derived state, not snapshotted.
        w.extend_from_slice(&self.xready[..32]);
        w.extend_from_slice(&self.fready[..32]);
        w.push(self.issued_this_cycle as u64);
        w.push(self.prev_def_mask as u64);
        w.push(self.prev_fdef_mask as u64);
        w.push(self.prev_was_mem as u64);
        for s in &self.scd {
            w.push(s.rop_v as u64);
            w.push(s.rop_d);
            w.push(s.rmask);
            w.push(s.rbop_pc);
            w.push(s.rop_ready);
        }
        w.push(self.next_flush_at);
        snapshot::stats_to_words(&self.stats, &mut w);
        self.icache.snapshot_words(&mut w);
        self.dcache.snapshot_words(&mut w);
        match &self.l2 {
            Some(l2) => {
                w.push(1);
                l2.snapshot_words(&mut w);
            }
            None => w.push(0),
        }
        self.itlb.snapshot_words(&mut w);
        self.dtlb.snapshot_words(&mut w);
        self.direction.snapshot_words(&mut w);
        self.btb.snapshot_words(&mut w);
        match &self.jte_table {
            Some(t) => {
                w.push(1);
                t.snapshot_words(&mut w);
            }
            None => w.push(0),
        }
        self.ras.snapshot_words(&mut w);
        self.ittage.snapshot_words(&mut w);
        Snapshot {
            fingerprint: self.fingerprint(),
            words: w,
            segments: self.mem.snapshot_segments(),
            output: self.output.clone(),
        }
    }

    /// Restores a [`Machine::snapshot`] into this machine. The machine
    /// must have been built from the same configuration and program and
    /// have the same memory segments mapped.
    ///
    /// The stat self-checker is disarmed: it replays the event stream
    /// from instruction 0, which a mid-stream resume cannot provide.
    ///
    /// # Errors
    /// [`SnapshotError::Fingerprint`] when the snapshot belongs to a
    /// different (config, program) pair; [`SnapshotError::Format`] when
    /// the memory layout or optional structures do not line up.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let expected = self.fingerprint();
        if snap.fingerprint != expected {
            return Err(SnapshotError::Fingerprint { expected, found: snap.fingerprint });
        }
        self.mem.restore_segments(&snap.segments).map_err(SnapshotError::Format)?;
        let mut c = Cursor::new(&snap.words);
        for r in &mut self.regs {
            *r = c.next()?;
        }
        for r in &mut self.fregs {
            *r = c.next()?;
        }
        self.pc = c.next()?;
        self.cycle = c.next()?;
        for r in &mut self.xready[..32] {
            *r = c.next()?;
        }
        for r in &mut self.fready[..32] {
            *r = c.next()?;
        }
        self.issued_this_cycle = c.next()? as usize;
        self.prev_def_mask = c.next()? as u32;
        self.prev_fdef_mask = c.next()? as u32;
        self.prev_was_mem = c.next()? != 0;
        for s in &mut self.scd {
            s.rop_v = c.next()? != 0;
            s.rop_d = c.next()?;
            s.rmask = c.next()?;
            s.rbop_pc = c.next()?;
            s.rop_ready = c.next()?;
        }
        self.next_flush_at = c.next()?;
        self.stats = snapshot::stats_from_words(&mut c)?;
        self.icache.restore_words(&mut c)?;
        self.dcache.restore_words(&mut c)?;
        let have_l2 = c.next()? != 0;
        match (&mut self.l2, have_l2) {
            (Some(l2), true) => l2.restore_words(&mut c)?,
            (None, false) => {}
            _ => return Err(SnapshotError::Format("L2 presence mismatch".into())),
        }
        self.itlb.restore_words(&mut c)?;
        self.dtlb.restore_words(&mut c)?;
        self.direction.restore_words(&mut c)?;
        self.btb.restore_words(&mut c)?;
        let have_jt = c.next()? != 0;
        match (&mut self.jte_table, have_jt) {
            (Some(t), true) => t.restore_words(&mut c)?,
            (None, false) => {}
            _ => return Err(SnapshotError::Format("JTE-table presence mismatch".into())),
        }
        self.ras.restore_words(&mut c)?;
        self.ittage.restore_words(&mut c)?;
        if c.remaining() != 0 {
            return Err(SnapshotError::Format(format!(
                "{} unconsumed snapshot words",
                c.remaining()
            )));
        }
        self.output = snap.output.clone();
        self.scratch = Scratch::default();
        self.invariants = None;
        Ok(())
    }
}
