//! Retire stage: per-retirement statistics bookkeeping (counters, the
//! emulated context-switch flush quantum, fault injection), trace-event
//! emission, and the cross-counter invariant checkpoint. Also the
//! `note_*` hooks the other stages use to record what happened on the
//! current retirement.

use super::Machine;
use crate::btb::{EntryKind, InsertOutcome};
use crate::config::ScdConfig;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::stats::BranchClass;
use crate::trace::{ArchInfo, BranchEvent, BtbInsertEvent, InstClass, JteFlushEvent, TraceEvent};
use scd_isa::Inst;

impl Machine {
    pub(super) fn note_branch(&mut self, class: BranchClass, mispredicted: bool) {
        self.stats.record_branch(class, mispredicted);
        self.scratch.branch = Some(BranchEvent { class, mispredicted });
    }

    pub(super) fn note_insert(&mut self, key: EntryKind, outcome: InsertOutcome) {
        self.scratch.inserts.push(BtbInsertEvent { key, outcome });
    }

    pub(super) fn note_flush(&mut self, flushed: u64) {
        let f = self.scratch.flush.get_or_insert(JteFlushEvent { flushes: 0, flushed: 0 });
        f.flushes += 1;
        f.flushed += flushed;
    }

    /// Applies one injected fault, returning the number of JTEs it
    /// knocked out (accounted as evictions on both the live counters and
    /// the trace event, so the population identity stays balanced).
    fn inject_fault(&mut self, kind: FaultKind, plan: &mut FaultPlan) -> u64 {
        match kind {
            FaultKind::JteInvalidate => {
                let r = plan.rng().next();
                match &mut self.jte_table {
                    Some(t) => t.fault_invalidate_jte(r),
                    None => self.btb.fault_invalidate_jte(r),
                }
            }
            FaultKind::BtbFlush => {
                let mut evicted = self.btb.fault_flush_all();
                if let Some(t) = &mut self.jte_table {
                    evicted += t.fault_flush_all();
                }
                evicted
            }
            FaultKind::BtbBitFlip => {
                self.btb.fault_flip_bit(plan.rng().next());
                0
            }
            FaultKind::RasFlush => {
                self.ras.clear();
                0
            }
            FaultKind::CacheInvalidate => {
                self.icache.flush();
                self.dcache.flush();
                if let Some(l2) = &mut self.l2 {
                    l2.flush();
                }
                0
            }
            FaultKind::TlbInvalidate => {
                self.itlb.flush();
                self.dtlb.flush();
                0
            }
            FaultKind::PredictorScramble => {
                self.direction.scramble(plan.rng());
                self.ittage.scramble(plan.rng());
                0
            }
        }
    }

    /// Finalizes statistics for a run that ends without a guest exit
    /// (instruction limit or watchdog), leaving the machine re-runnable.
    pub(super) fn finalize_partial(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.btb = self.merged_btb_stats();
        if let Some(sink) = &mut self.tracer.0 {
            sink.finish();
        }
    }

    /// Retirement bookkeeping that precedes execution: counts the
    /// instruction (and its dispatcher attribution), runs the emulated
    /// context-switch flush quantum, and fires due injected faults.
    /// Returns whether the instruction retired from dispatcher code.
    pub(super) fn begin_retirement(&mut self, pc: u64, scd_cfg: &ScdConfig) -> bool {
        self.stats.instructions += 1;
        let dispatch = self.in_dispatch(pc);
        if dispatch {
            self.stats.dispatch_instructions += 1;
        }
        if self.stats.instructions >= self.next_flush_at {
            // Emulated context switch: the OS executes jte.flush
            // (Section IV).
            let flushed = self.jte_flush();
            self.note_flush(flushed);
            self.next_flush_at += scd_cfg.flush_interval.unwrap_or(u64::MAX);
        }
        // Fault injection fires between retirements, before this
        // instruction executes; the plan is taken out of `self` for
        // the call so `inject_fault` can borrow the machine freely.
        if let Some(mut plan) = self.fault_plan.take() {
            if let Some(kind) = plan.due(self.stats.instructions) {
                let evicted = self.inject_fault(kind, &mut plan);
                self.scratch.fault = Some(FaultEvent { kind, evicted });
            }
            self.fault_plan = Some(plan);
        }
        dispatch
    }

    /// Drains the retirement's scratch attribution into one
    /// [`TraceEvent`], feeds sink and self-checker, and runs the
    /// invariant checkpoint when due (always on the final retirement).
    pub(super) fn emit_retirement(
        &mut self,
        inst: &Inst,
        pc: u64,
        cycle_before: u64,
        dispatch: bool,
        next_pc: u64,
        exiting: bool,
    ) {
        if self.tracer.0.is_some() || self.invariants.is_some() {
            let arch = ArchInfo {
                wx: inst.def_xreg().map(|r| (r.index() as u8, self.regs[r.index()])),
                wf: inst.def_freg().map(|r| (r.index() as u8, self.fregs[r.index()])),
                ea: self.scratch.ea,
                store: self.scratch.store,
                next_pc,
            };
            let ev = TraceEvent {
                seq: self.stats.instructions - 1,
                pc,
                class: InstClass::of(inst),
                cycle: self.cycle,
                cycles: self.cycle - cycle_before,
                dispatch,
                fetch: self.scratch.fetch,
                data: self.scratch.data.filter(|d| !d.is_default()),
                branch: self.scratch.branch,
                redirect: self.scratch.redirect,
                bop: self.scratch.bop,
                inserts: self.scratch.inserts,
                flush: self.scratch.flush,
                fault: self.scratch.fault,
                arch: Some(arch),
            };
            if let Some(sink) = &mut self.tracer.0 {
                sink.event(&ev);
            }
            if let Some(inv) = &mut self.invariants {
                inv.observe(&ev);
            }
            let checkpoint = exiting
                || self.invariants.as_ref().is_some_and(|inv| inv.due(self.stats.instructions));
            if checkpoint && self.invariants.is_some() {
                let mut live = self.stats.clone();
                live.cycles = self.cycle;
                live.btb = self.merged_btb_stats();
                self.btb.assert_population_invariant();
                let mut resident = self.btb.resident_jtes() as u64;
                if let Some(t) = &self.jte_table {
                    t.assert_population_invariant();
                    resident += t.resident_jtes() as u64;
                }
                if let Some(inv) = &self.invariants {
                    inv.check(&live, resident);
                }
            }
        }
    }
}
