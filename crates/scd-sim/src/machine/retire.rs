//! Retire stage: per-retirement statistics bookkeeping (counters, the
//! emulated context-switch flush quantum, fault injection), trace-event
//! emission, and the cross-counter invariant checkpoint. Also the
//! `note_*` hooks the other stages use to record what happened on the
//! current retirement.

use super::{Machine, StaticInfo};
use crate::btb::{EntryKind, InsertOutcome};
use crate::config::ScdConfig;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::stats::BranchClass;
use crate::trace::{ArchInfo, BranchEvent, BtbInsertEvent, JteFlushEvent, TraceEvent};

impl Machine {
    pub(super) fn note_branch<const OBSERVED: bool>(
        &mut self,
        class: BranchClass,
        mispredicted: bool,
    ) {
        self.stats.record_branch(class, mispredicted);
        if OBSERVED {
            self.scratch.branch = Some(BranchEvent { class, mispredicted });
        }
    }

    pub(super) fn note_insert<const OBSERVED: bool>(&mut self, key: EntryKind, outcome: InsertOutcome) {
        if OBSERVED {
            self.scratch.inserts.push(BtbInsertEvent { key, outcome });
        }
    }

    pub(super) fn note_flush<const OBSERVED: bool>(&mut self, flushed: u64) {
        if OBSERVED {
            let f = self.scratch.flush.get_or_insert(JteFlushEvent { flushes: 0, flushed: 0 });
            f.flushes += 1;
            f.flushed += flushed;
        }
    }

    /// Applies one injected fault, returning the number of JTEs it
    /// knocked out (accounted as evictions on both the live counters and
    /// the trace event, so the population identity stays balanced).
    fn inject_fault(&mut self, kind: FaultKind, plan: &mut FaultPlan) -> u64 {
        match kind {
            FaultKind::JteInvalidate => {
                let r = plan.rng().next();
                match &mut self.jte_table {
                    Some(t) => t.fault_invalidate_jte(r),
                    None => self.btb.fault_invalidate_jte(r),
                }
            }
            FaultKind::BtbFlush => {
                let mut evicted = self.btb.fault_flush_all();
                if let Some(t) = &mut self.jte_table {
                    evicted += t.fault_flush_all();
                }
                evicted
            }
            FaultKind::BtbBitFlip => {
                self.btb.fault_flip_bit(plan.rng().next());
                0
            }
            FaultKind::RasFlush => {
                self.ras.clear();
                0
            }
            FaultKind::CacheInvalidate => {
                self.icache.flush();
                self.dcache.flush();
                if let Some(l2) = &mut self.l2 {
                    l2.flush();
                }
                0
            }
            FaultKind::TlbInvalidate => {
                self.itlb.flush();
                self.dtlb.flush();
                0
            }
            FaultKind::PredictorScramble => {
                self.direction.scramble(plan.rng());
                self.ittage.scramble(plan.rng());
                0
            }
        }
    }

    /// Finalizes statistics for a run that ends without a guest exit
    /// (instruction limit or watchdog), leaving the machine re-runnable.
    pub(super) fn finalize_partial(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.btb = self.merged_btb_stats();
        if let Some(sink) = &mut self.tracer.0 {
            sink.finish();
        }
    }

    /// Retirement bookkeeping that precedes execution: counts the
    /// instruction (and its dispatcher attribution, precomputed in the
    /// static side-table), runs the emulated context-switch flush
    /// quantum, and fires due injected faults. A machine with an armed
    /// fault plan always runs the observed loop, so fault injection is
    /// compiled out of the fast path.
    pub(super) fn begin_retirement<const OBSERVED: bool>(
        &mut self,
        dispatch: bool,
        scd_cfg: &ScdConfig,
    ) {
        self.stats.instructions += 1;
        if dispatch {
            self.stats.dispatch_instructions += 1;
        }
        if self.stats.instructions >= self.next_flush_at {
            // Emulated context switch: the OS executes jte.flush
            // (Section IV).
            let flushed = self.jte_flush();
            self.note_flush::<OBSERVED>(flushed);
            self.next_flush_at += scd_cfg.flush_interval.unwrap_or(u64::MAX);
        }
        // Fault injection fires between retirements, before this
        // instruction executes; the plan is taken out of `self` for
        // the call so `inject_fault` can borrow the machine freely.
        if OBSERVED {
            if let Some(mut plan) = self.fault_plan.take() {
                if let Some(kind) = plan.due(self.stats.instructions) {
                    let evicted = self.inject_fault(kind, &mut plan);
                    self.scratch.fault = Some(FaultEvent { kind, evicted });
                }
                self.fault_plan = Some(plan);
            }
        }
    }

    /// Drains the retirement's scratch attribution into one
    /// [`TraceEvent`], feeds sink and self-checker, and runs the
    /// invariant checkpoint when due (always on the final retirement).
    /// Only called from the observed run loop; decode facts (class,
    /// def-regs, dispatcher attribution) come from the static
    /// side-table.
    pub(super) fn emit_retirement(
        &mut self,
        si: &StaticInfo,
        pc: u64,
        cycle_before: u64,
        next_pc: u64,
        exiting: bool,
    ) {
        if self.tracer.0.is_some() || self.invariants.is_some() {
            let arch = ArchInfo {
                wx: si.def_x.map(|r| (r.index() as u8, self.regs[r.index()])),
                wf: si.def_f.map(|r| (r.index() as u8, self.fregs[r.index()])),
                ea: self.scratch.ea,
                store: self.scratch.store,
                next_pc,
            };
            let ev = TraceEvent {
                seq: self.stats.instructions - 1,
                pc,
                class: si.class,
                cycle: self.cycle,
                cycles: self.cycle - cycle_before,
                dispatch: si.in_dispatch,
                fetch: self.scratch.fetch,
                data: self.scratch.data.filter(|d| !d.is_default()),
                branch: self.scratch.branch,
                redirect: self.scratch.redirect,
                bop: self.scratch.bop,
                inserts: self.scratch.inserts,
                flush: self.scratch.flush,
                fault: self.scratch.fault,
                arch: Some(arch),
            };
            if let Some(sink) = &mut self.tracer.0 {
                sink.event(&ev);
            }
            if let Some(inv) = &mut self.invariants {
                inv.observe(&ev);
            }
            let checkpoint = exiting
                || self.invariants.as_ref().is_some_and(|inv| inv.due(self.stats.instructions));
            if checkpoint && self.invariants.is_some() {
                let mut live = self.stats.clone();
                live.cycles = self.cycle;
                live.btb = self.merged_btb_stats();
                self.btb.assert_population_invariant();
                let mut resident = self.btb.resident_jtes() as u64;
                if let Some(t) = &self.jte_table {
                    t.assert_population_invariant();
                    resident += t.resident_jtes() as u64;
                }
                if let Some(inv) = &self.invariants {
                    inv.check(&live, resident);
                }
            }
        }
    }
}
