//! Execute stage: the issue/scoreboard timing model (dual-issue
//! pairing, operand readiness, long-latency interlocks) and the
//! per-instruction walk of the RV64 subset. Every *data* result is
//! computed by the shared [`scd_isa::exec`] semantics table (also used
//! by the `scd-ref` reference ISS), so this file only owns register
//! file / memory plumbing and timing. Control-flow arms delegate
//! prediction and redirect charging to [`super::frontend`]; loads and
//! stores charge the data side through [`super::memory`].

use super::{Machine, SimError, StaticInfo};
use crate::btb::{BtbKey, EntryKind};
use crate::config::ScdConfig;
use crate::mem::MemFault;
use crate::stats::BranchClass;
use crate::trace::RedirectCause;
use scd_isa::{exec, AluOp, FpOp, Inst, LoadOp, Reg, StoreOp};

/// What one retirement decided: where fetch goes next, and whether the
/// guest requested a halt (applied by the run loop *after* trace
/// emission so the final retirement is observed like any other).
#[derive(Debug, Clone, Copy)]
pub(super) struct StepOut {
    pub(super) next_pc: u64,
    pub(super) exit_code: Option<u64>,
}

impl Machine {
    #[inline]
    pub(super) fn wx(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Advances the issue clock for one instruction, honoring dual-issue
    /// pairing rules and operand readiness. Source/destination registers
    /// come pre-resolved from the [`StaticInfo`] side-table, so no
    /// per-retirement instruction decode happens here.
    pub(super) fn issue(&mut self, si: &StaticInfo) {
        // Absent source slots index the always-zero sentinel (entry 32),
        // so operand readiness is four unconditional loads + max.
        let min_cycle = self
            .cycle
            .max(self.xready[si.xsrc[0] as usize])
            .max(self.xready[si.xsrc[1] as usize])
            .max(self.fready[si.fsrc[0] as usize])
            .max(self.fready[si.fsrc[1] as usize]);

        let can_pair = self.cfg.issue_width > 1
            && self.issued_this_cycle == 1
            && min_cycle <= self.cycle
            && !(self.prev_was_mem && si.is_mem)
            && (si.src_x_mask & self.prev_def_mask) == 0
            && (si.src_f_mask & self.prev_fdef_mask) == 0;

        if can_pair {
            self.issued_this_cycle = 2;
        } else {
            self.cycle = (self.cycle + 1).max(min_cycle);
            self.issued_this_cycle = 1;
        }
        self.prev_def_mask = si.def_x_mask;
        self.prev_fdef_mask = si.def_f_mask;
        self.prev_was_mem = si.is_mem;
    }

    /// Executes one instruction functionally and charges its class-
    /// specific timing (branch resolution, data access, long-latency
    /// results). Returns the next PC and any pending halt.
    ///
    /// # Errors
    /// [`SimError::Mem`] on a faulting access, [`SimError::Break`] on
    /// `ebreak` or an unknown `ecall` service.
    pub(super) fn execute_inst<const OBSERVED: bool, const WARMING: bool>(
        &mut self,
        inst: &Inst,
        pc: u64,
        nbids: usize,
        scd_cfg: &ScdConfig,
    ) -> Result<StepOut, SimError> {
        let mut next_pc = pc + 4;
        let mut exit_code: Option<u64> = None;
        let merr = |fault: MemFault| SimError::Mem { pc, fault };

        match *inst {
            Inst::Lui { rd, imm } => {
                self.wx(rd, imm as u64);
                self.xready[rd.index()] = self.cycle + 1;
            }
            Inst::Auipc { rd, imm } => {
                self.wx(rd, pc.wrapping_add(imm as u64));
                self.xready[rd.index()] = self.cycle + 1;
            }
            Inst::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u64);
                self.wx(rd, pc + 4);
                self.xready[rd.index()] = self.cycle + 1;
                next_pc = target;
                // Direct jumps: BTB-predicted in fetch; miss costs a
                // decode-stage redirect.
                let pred = self.btb.lookup_leveled(BtbKey::Pc(pc));
                self.charge_l1_late_target::<WARMING>(pred.is_some_and(|(_, l1)| l1));
                let hit = pred.map(|(t, _)| t) == Some(target);
                if !hit {
                    let out = self.btb.insert(BtbKey::Pc(pc), target);
                    self.note_insert::<OBSERVED>(EntryKind::Pc, out);
                    self.redirect::<OBSERVED, WARMING>(
                        RedirectCause::JalMiss,
                        self.cfg.jal_redirect_penalty,
                    );
                }
                self.note_branch::<OBSERVED>(BranchClass::Direct, !hit);
                if rd == Reg::RA {
                    self.ras.push(pc + 4);
                }
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.regs[rs1.index()].wrapping_add(offset as u64) & !1;
                self.wx(rd, pc + 4);
                self.xready[rd.index()] = self.cycle + 1;
                next_pc = target;
                self.account_indirect::<OBSERVED, WARMING>(pc, rd, rs1, target);
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.regs[rs1.index()];
                let b = self.regs[rs2.index()];
                let taken = exec::branch_taken(op, a, b);
                let target = pc.wrapping_add(offset as u64);
                // Effective front-end prediction: taken only when the
                // direction predictor says taken AND the BTB supplies
                // the target.
                let dir_pred = self.direction.predict(pc);
                let pred = self.btb.lookup_leveled(BtbKey::Pc(pc));
                // Fetch acts on the BTB target only when the direction
                // predictor says taken; only then can L1 lateness bite.
                self.charge_l1_late_target::<WARMING>(
                    dir_pred && pred.is_some_and(|(_, l1)| l1),
                );
                let btb_hit = pred.map(|(t, _)| t) == Some(target);
                let pred_taken = dir_pred && btb_hit;
                let mispredicted = pred_taken != taken;
                self.direction.update(pc, taken);
                if taken {
                    next_pc = target;
                    if !btb_hit {
                        let out = self.btb.insert(BtbKey::Pc(pc), target);
                        self.note_insert::<OBSERVED>(EntryKind::Pc, out);
                    }
                }
                self.note_branch::<OBSERVED>(BranchClass::Conditional, mispredicted);
                if mispredicted {
                    self.redirect::<OBSERVED, WARMING>(
                        RedirectCause::CondMispredict,
                        self.cfg.branch_miss_penalty,
                    );
                }
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                if OBSERVED {
                    self.scratch.ea = Some(addr);
                }
                let v = self.exec_load(op, addr).map_err(merr)?;
                self.wx(rd, v);
                self.stats.loads += 1;
                self.data_timing::<OBSERVED, WARMING>(addr, false);
                self.xready[rd.index()] = self.cycle + 1 + self.cfg.load_use_penalty;
            }
            Inst::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                let v = self.regs[rs2.index()];
                if OBSERVED {
                    self.scratch.ea = Some(addr);
                    self.scratch.store = Some(exec::store_truncate(op, v));
                }
                self.exec_store(op, addr, v).map_err(merr)?;
                self.stats.stores += 1;
                self.data_timing::<OBSERVED, WARMING>(addr, true);
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let v = alu(op, self.regs[rs1.index()], imm as u64);
                self.wx(rd, v);
                self.xready[rd.index()] = self.cycle + 1;
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = alu(op, self.regs[rs1.index()], self.regs[rs2.index()]);
                self.wx(rd, v);
                let lat = if op.is_muldiv() {
                    if matches!(op, AluOp::Mul | AluOp::Mulh | AluOp::Mulhu | AluOp::Mulw) {
                        self.cfg.mul_latency
                    } else {
                        self.cfg.div_latency
                    }
                } else {
                    1
                };
                self.xready[rd.index()] = self.cycle + lat;
            }
            Inst::Fld { rd, rs1, offset } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                if OBSERVED {
                    self.scratch.ea = Some(addr);
                }
                let v = self.mem.read_u64(addr).map_err(merr)?;
                self.fregs[rd.index()] = v;
                self.stats.loads += 1;
                self.data_timing::<OBSERVED, WARMING>(addr, false);
                self.fready[rd.index()] = self.cycle + 1 + self.cfg.load_use_penalty;
            }
            Inst::Fsd { rs2, rs1, offset } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                if OBSERVED {
                    self.scratch.ea = Some(addr);
                    self.scratch.store = Some(self.fregs[rs2.index()]);
                }
                self.mem
                    .write_u64(addr, self.fregs[rs2.index()])
                    .map_err(merr)?;
                self.stats.stores += 1;
                self.data_timing::<OBSERVED, WARMING>(addr, true);
            }
            Inst::FOp { op, rd, rs1, rs2 } => {
                self.fregs[rd.index()] =
                    exec::fp_op(op, self.fregs[rs1.index()], self.fregs[rs2.index()]);
                let lat = match op {
                    FpOp::FdivD | FpOp::FsqrtD => self.cfg.fdiv_latency,
                    _ => self.cfg.fpu_latency,
                };
                self.fready[rd.index()] = self.cycle + lat;
            }
            Inst::FCmp { op, rd, rs1, rs2 } => {
                let v = exec::fcmp(op, self.fregs[rs1.index()], self.fregs[rs2.index()]);
                self.wx(rd, v as u64);
                self.xready[rd.index()] = self.cycle + self.cfg.fpu_latency;
            }
            Inst::FcvtLD { rd, rs1, rm } => {
                self.wx(rd, exec::fcvt_l_d(self.fregs[rs1.index()], rm));
                self.xready[rd.index()] = self.cycle + self.cfg.fpu_latency;
            }
            Inst::FcvtDL { rd, rs1 } => {
                self.fregs[rd.index()] = exec::fcvt_d_l(self.regs[rs1.index()]);
                self.fready[rd.index()] = self.cycle + self.cfg.fpu_latency;
            }
            Inst::FmvXD { rd, rs1 } => {
                self.wx(rd, self.fregs[rs1.index()]);
                self.xready[rd.index()] = self.cycle + 1;
            }
            Inst::FmvDX { rd, rs1 } => {
                self.fregs[rd.index()] = self.regs[rs1.index()];
                self.fready[rd.index()] = self.cycle + 1;
            }
            Inst::Ecall => {
                match self.regs[Reg::A7.index()] {
                    // Halt is deferred past trace emission so the
                    // final retirement is observed like any other.
                    0 => exit_code = Some(self.regs[Reg::A0.index()]),
                    1 => self.output.push(self.regs[Reg::A0.index()] as u8),
                    n => {
                        // Unknown service: treat as a guest bug.
                        let _ = n;
                        return Err(SimError::Break { pc });
                    }
                }
            }
            Inst::Ebreak => return Err(SimError::Break { pc }),
            Inst::Fence => {}

            // ---- SCD extension ----
            Inst::SetMask { bid, rs1 } => {
                let bid = bid as usize % nbids.max(1);
                self.scd[bid].rmask = self.regs[rs1.index()];
            }
            Inst::Bop { bid } => {
                self.exec_bop::<OBSERVED, WARMING>(bid, pc, &mut next_pc, scd_cfg, nbids);
            }
            Inst::Jru { bid, rs1 } => {
                next_pc = self.exec_jru::<OBSERVED, WARMING>(bid, rs1, pc, scd_cfg, nbids);
            }
            Inst::JteFlush => {
                let flushed = self.jte_flush();
                self.note_flush::<OBSERVED>(flushed);
            }
            Inst::LoadOp {
                op,
                bid,
                rd,
                rs1,
                offset,
            } => {
                let bid = bid as usize % nbids.max(1);
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                if OBSERVED {
                    self.scratch.ea = Some(addr);
                }
                let v = self.exec_load(op, addr).map_err(merr)?;
                self.wx(rd, v);
                self.stats.loads += 1;
                self.data_timing::<OBSERVED, WARMING>(addr, false);
                let ready = self.cycle + 1 + self.cfg.load_use_penalty;
                self.xready[rd.index()] = ready;
                let s = &mut self.scd[bid];
                s.rop_d = v & s.rmask;
                s.rop_v = true;
                s.rop_ready = ready;
            }
        }

        Ok(StepOut { next_pc, exit_code })
    }

    fn exec_load(&self, op: LoadOp, addr: u64) -> Result<u64, MemFault> {
        let raw = match exec::load_width(op) {
            1 => self.mem.read_u8(addr)? as u64,
            2 => self.mem.read_u16(addr)? as u64,
            4 => self.mem.read_u32(addr)? as u64,
            _ => self.mem.read_u64(addr)?,
        };
        Ok(exec::load_extend(op, raw))
    }

    fn exec_store(&mut self, op: StoreOp, addr: u64, v: u64) -> Result<(), MemFault> {
        let v = exec::store_truncate(op, v);
        match exec::store_width(op) {
            1 => self.mem.write_u8(addr, v as u8),
            2 => self.mem.write_u16(addr, v as u16),
            4 => self.mem.write_u32(addr, v as u32),
            _ => self.mem.write_u64(addr, v),
        }
    }
}

// The integer ALU semantics live in the shared table; re-exported so the
// machine tests keep exercising exactly what the execute stage calls.
pub(super) use scd_isa::exec::alu;
