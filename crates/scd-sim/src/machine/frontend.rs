//! Front-end stage: instruction fetch timing and the branch predictor
//! complex — direction predictor, BTB, RAS, and the VBBI / ITTAGE
//! indirect predictors — plus the SCD short-circuit itself: `bop`
//! consulting the BTB-overlaid JTEs and the `jru` slow path that
//! trains them (Fig. 4 of the paper).
//!
//! Everything here decides *where fetch goes next* and charges the
//! redirect penalties for getting it wrong; functional semantics live
//! in [`super::execute`].

use super::Machine;
use crate::btb::{BtbKey, EntryKind, InsertOutcome};
use crate::config::{IndirectPredictor, ScdConfig};
use crate::stats::BranchClass;
use crate::trace::{BopEvent, BopOutcome, FetchAccess, RedirectCause, RedirectEvent};
use scd_isa::Reg;

impl Machine {
    /// Instruction fetch timing for the instruction at `pc`. Under
    /// `WARMING` the I-TLB / I-cache / L2 contents and statistics update
    /// exactly as in detailed mode, but no miss cycles are charged (the
    /// cycle clock is frozen for the whole warming stretch).
    pub(super) fn fetch_timing<const OBSERVED: bool, const WARMING: bool>(&mut self, pc: u64) {
        let mut f = FetchAccess::default();
        self.stats.itlb.accesses += 1;
        if !self.itlb.access(pc) {
            self.stats.itlb.misses += 1;
            f.itlb_miss = true;
            f.penalty += self.cfg.tlb_miss_penalty;
            if !WARMING {
                self.cycle += self.cfg.tlb_miss_penalty;
            }
        }
        self.stats.icache.accesses += 1;
        let a = self.icache.access(pc, false);
        if !a.hit {
            self.stats.icache.misses += 1;
            f.icache_miss = true;
            let (cost, l2) = self.l1_miss_cost(pc, false);
            f.l2 = l2;
            f.penalty += cost;
            if !WARMING {
                self.cycle += cost;
            }
        }
        if OBSERVED {
            self.scratch.fetch = f;
        }
    }

    /// Fetch timing for the untraced loops: consecutive fetches from
    /// the same I-cache line (which also means the same I-TLB page —
    /// a line never spans a page) are all hits charging zero cycles,
    /// so they collapse into a deferred counter instead of touching
    /// the cache/TLB models per retirement. Any other fetch first
    /// materializes the pending streak — preserving the exact
    /// access-ordering the interleaved loop would have produced — and
    /// takes the full [`Machine::fetch_timing`] path.
    #[inline]
    pub(super) fn fetch_fast<const WARMING: bool>(&mut self, pc: u64) {
        if self.icache.block_of(pc) == self.fetch_blk {
            self.fetch_streak += 1;
        } else {
            self.flush_fetch_streak();
            self.fetch_timing::<false, WARMING>(pc);
            self.fetch_blk = self.icache.block_of(pc);
        }
    }

    /// Materializes a pending fetch streak: `k` deferred same-line
    /// fetches become `k` I-TLB and I-cache accesses (all hits) and one
    /// collapsed MRU re-stamp on each structure's memo-resident entry.
    /// Called before any non-streak I-side access and at every run-loop
    /// exit, so callers never observe deferred state.
    pub(super) fn flush_fetch_streak(&mut self) {
        if self.fetch_streak > 0 {
            self.stats.itlb.accesses += self.fetch_streak;
            self.stats.icache.accesses += self.fetch_streak;
            self.itlb.bump_mru(self.fetch_streak);
            self.icache.bump_mru(self.fetch_streak);
            self.fetch_streak = 0;
        }
        self.fetch_blk = u64::MAX;
    }

    /// Charges a front-end redirect penalty and closes the issue group
    /// (a no-op under `WARMING`: predictor state was already updated by
    /// the caller; only the timing side is suppressed).
    pub(super) fn redirect<const OBSERVED: bool, const WARMING: bool>(
        &mut self,
        cause: RedirectCause,
        penalty: u64,
    ) {
        if !WARMING {
            self.cycle += penalty;
            self.issued_this_cycle = self.cfg.issue_width; // next inst starts a new cycle
        }
        if OBSERVED {
            debug_assert!(
                self.scratch.redirect.is_none(),
                "two redirects in one retirement"
            );
            self.scratch.redirect = Some(RedirectEvent { cause, penalty });
        }
    }

    /// Charges the extra fetch bubbles of a prediction served by the
    /// L1 bank of a two-level BTB (a no-op for the Ideal organization
    /// and under `WARMING`). The late target steers fetch correctly —
    /// no redirect event — it just arrives `l1_bubbles` cycles later
    /// than an L0 hit would have.
    pub(super) fn charge_l1_late_target<const WARMING: bool>(&mut self, from_l1: bool) {
        if !WARMING && from_l1 {
            self.cycle += self.btb.l1_hit_bubbles();
        }
    }

    fn branch_class(&self, pc: u64, rd: Reg, rs1: Reg) -> BranchClass {
        if self.sinfo(pc).dispatch_jump {
            BranchClass::IndirectDispatch
        } else if rs1 == Reg::RA && rd.is_zero() {
            BranchClass::Return
        } else {
            BranchClass::IndirectOther
        }
    }

    /// Predicts and accounts an indirect jump (`jalr`/`jru`) at `pc`
    /// resolving to `target`. Returns nothing; charges penalties.
    pub(super) fn account_indirect<const OBSERVED: bool, const WARMING: bool>(
        &mut self,
        pc: u64,
        rd: Reg,
        rs1: Reg,
        target: u64,
    ) {
        let class = self.branch_class(pc, rd, rs1);
        let mispredicted = match class {
            BranchClass::Return => {
                let pred = self.ras.pop();
                pred != Some(target)
            }
            _ if self.cfg.indirect == IndirectPredictor::Ittage => {
                // ITTAGE covers every indirect jump; the PC-indexed BTB
                // is its base component.
                let pred = self
                    .ittage
                    .predict(pc)
                    .or_else(|| self.btb.lookup(BtbKey::Pc(pc)));
                let miss = pred != Some(target);
                self.ittage.update(pc, target);
                if miss {
                    let out = self.btb.insert(BtbKey::Pc(pc), target);
                    self.note_insert::<OBSERVED>(EntryKind::Pc, out);
                }
                miss
            }
            _ => {
                // VBBI applies only on registered jump PCs under the Vbbi
                // configuration; everything else is PC-indexed.
                let vbbi = self.sinfo(pc).vbbi;
                let key = match (self.cfg.indirect, vbbi) {
                    (IndirectPredictor::Vbbi, Some(h)) => {
                        let hint = self.regs[h.hint_reg.index()] & h.mask;
                        // Warming freezes the cycle clock, which would
                        // make the hint look permanently not-ready and
                        // train the PC-indexed key instead; steady-state
                        // behavior (the thing warming is priming for) is
                        // the hint being available.
                        let ready = WARMING
                            || self.xready[h.hint_reg.index()] + self.cfg.fetch_lead <= self.cycle;
                        if ready {
                            BtbKey::Vbbi(vbbi_mix(pc, hint))
                        } else {
                            BtbKey::Pc(pc)
                        }
                    }
                    _ => BtbKey::Pc(pc),
                };
                let pred = self.btb.lookup_leveled(key);
                // Fetch steers to whatever target the BTB supplies; an
                // L1-served target arrives late whether or not it later
                // verifies.
                self.charge_l1_late_target::<WARMING>(pred.is_some_and(|(_, l1)| l1));
                let miss = pred.map(|(t, _)| t) != Some(target);
                if miss {
                    // Train with the resolved hint value (VBBI updates the
                    // BTB with the actual key at execute).
                    let update_key = match (self.cfg.indirect, vbbi) {
                        (IndirectPredictor::Vbbi, Some(h)) => {
                            let hint = self.regs[h.hint_reg.index()] & h.mask;
                            BtbKey::Vbbi(vbbi_mix(pc, hint))
                        }
                        _ => BtbKey::Pc(pc),
                    };
                    let out = self.btb.insert(update_key, target);
                    self.note_insert::<OBSERVED>(update_key.kind(), out);
                }
                miss
            }
        };
        if rd == Reg::RA {
            self.ras.push(pc + 4);
        }
        self.note_branch::<OBSERVED>(class, mispredicted);
        if mispredicted {
            self.redirect::<OBSERVED, WARMING>(
                RedirectCause::IndirectMispredict,
                self.cfg.branch_miss_penalty,
            );
        }
    }

    /// JTE probe, reporting the serving level: the dedicated table is
    /// always Ideal (never `from_l1`); the overlay inherits whatever
    /// organization the BTB has.
    #[inline]
    fn jte_lookup(&mut self, bid: u8, opcode: u64) -> Option<(u64, bool)> {
        let key = BtbKey::Jte { bid, opcode };
        match &mut self.jte_table {
            Some(t) => t.lookup_leveled(key),
            None => self.btb.lookup_leveled(key),
        }
    }

    #[inline]
    fn jte_insert(&mut self, bid: u8, opcode: u64, target: u64) -> InsertOutcome {
        let key = BtbKey::Jte { bid, opcode };
        match &mut self.jte_table {
            Some(t) => t.insert(key, target),
            None => self.btb.insert(key, target),
        }
    }

    pub(super) fn merged_btb_stats(&self) -> crate::btb::BtbStats {
        let mut s = self.btb.stats;
        if let Some(t) = &self.jte_table {
            s.jte_inserts += t.stats.jte_inserts;
            s.jte_cap_skips += t.stats.jte_cap_skips;
            s.btb_evicted_by_jte += t.stats.btb_evicted_by_jte;
            s.jte_evictions += t.stats.jte_evictions;
            s.btb_blocked_by_jte += t.stats.btb_blocked_by_jte;
            s.jte_flushes += t.stats.jte_flushes;
            s.jte_flushed += t.stats.jte_flushed;
        }
        s
    }

    pub(super) fn jte_flush(&mut self) -> u64 {
        let flushed = match &mut self.jte_table {
            Some(t) => t.flush_jtes(),
            None => self.btb.flush_jtes(),
        };
        for s in &mut self.scd {
            s.rop_v = false;
        }
        flushed
    }

    /// Executes `bop`: under the stall scheme fetch waits for Rop, then
    /// redirects through the matching JTE; under the fall-through scheme
    /// an unready Rop simply falls through to the slow path.
    ///
    /// Under `WARMING` the frozen cycle clock would make every Rop look
    /// permanently unready (stalling forever under the stall scheme,
    /// never short-circuiting under fall-through), so readiness checks
    /// are bypassed: a valid Rop consults the JTE directly, which is the
    /// steady-state behavior both schemes converge to and keeps the JTE
    /// consume-and-retrain cycle warm.
    pub(super) fn exec_bop<const OBSERVED: bool, const WARMING: bool>(
        &mut self,
        bid: u8,
        pc: u64,
        next_pc: &mut u64,
        scd_cfg: &ScdConfig,
        nbids: usize,
    ) {
        let bid = bid as usize % nbids.max(1);
        self.stats.bop_executed += 1;
        let s = self.scd[bid];
        let mut stall = 0;
        let outcome = if !scd_cfg.enabled {
            BopOutcome::Disabled
        } else if !s.rop_v {
            BopOutcome::RopInvalid
        } else if WARMING || scd_cfg.stall_on_unready {
            // Stall scheme: fetch waits until Rop is visible.
            if !WARMING {
                let need = s.rop_ready + self.cfg.fetch_lead;
                if need > self.cycle {
                    stall = need - self.cycle;
                    self.stats.bop_stall_cycles += stall;
                    self.cycle = need;
                }
            }
            if let Some((t, from_l1)) = self.jte_lookup(bid as u8, s.rop_d) {
                *next_pc = t;
                self.scd[bid].rop_v = false;
                // A JTE served from L1 steers fetch correctly but
                // late; its bubbles ride the same redirect charge.
                let late = if from_l1 { self.btb.l1_hit_bubbles() } else { 0 };
                self.redirect::<OBSERVED, WARMING>(
                    RedirectCause::BopHit,
                    scd_cfg.bop_hit_bubbles + late,
                );
                BopOutcome::Hit
            } else {
                BopOutcome::JteMiss
            }
        } else if s.rop_ready + self.cfg.fetch_lead > self.cycle {
            // Fall-through scheme: only short-circuit when Rop
            // was already available at fetch.
            BopOutcome::NotReady
        } else if let Some((t, from_l1)) = self.jte_lookup(bid as u8, s.rop_d) {
            *next_pc = t;
            self.scd[bid].rop_v = false;
            let late = if from_l1 { self.btb.l1_hit_bubbles() } else { 0 };
            self.redirect::<OBSERVED, WARMING>(
                RedirectCause::BopHit,
                scd_cfg.bop_hit_bubbles + late,
            );
            BopOutcome::Hit
        } else {
            BopOutcome::JteMiss
        };
        if outcome == BopOutcome::Hit {
            self.stats.bop_hits += 1;
        } else {
            self.stats.bop_misses += 1;
        }
        if OBSERVED {
            self.scratch.bop = Some(BopEvent { outcome, stall });
        }
        self.scd[bid].rbop_pc = pc;
    }

    /// Executes `jru`: the dispatch slow path. Trains the JTE with the
    /// pending (opcode → target) pair when one is armed, then predicts
    /// and accounts the jump like any other indirect. Returns the
    /// resolved target.
    pub(super) fn exec_jru<const OBSERVED: bool, const WARMING: bool>(
        &mut self,
        bid: u8,
        rs1: Reg,
        pc: u64,
        scd_cfg: &ScdConfig,
        nbids: usize,
    ) -> u64 {
        let bid = bid as usize % nbids.max(1);
        self.stats.jru_executed += 1;
        let target = self.regs[rs1.index()] & !1;
        if scd_cfg.enabled && self.scd[bid].rop_v {
            let opcode = self.scd[bid].rop_d;
            let out = self.jte_insert(bid as u8, opcode, target);
            self.note_insert::<OBSERVED>(EntryKind::Jte, out);
            self.scd[bid].rop_v = false;
        }
        self.account_indirect::<OBSERVED, WARMING>(pc, Reg::ZERO, rs1, target);
        target
    }

    /// `exec_jru` with the indirect-predictor traffic withheld: the
    /// replay warm leg uses this while its predictor window is still
    /// closed, because the JTE overlay must keep training (it backs the
    /// producer's `bop` speculation and the `jru_executed`/insert
    /// counters stay architecturally exact) even when ITTAGE/BTB warming
    /// hasn't started.
    pub(super) fn exec_jru_train_only(
        &mut self,
        bid: u8,
        rs1: Reg,
        _pc: u64,
        scd_cfg: &ScdConfig,
        nbids: usize,
    ) -> u64 {
        let bid = bid as usize % nbids.max(1);
        self.stats.jru_executed += 1;
        let target = self.regs[rs1.index()] & !1;
        if scd_cfg.enabled && self.scd[bid].rop_v {
            let opcode = self.scd[bid].rop_d;
            let out = self.jte_insert(bid as u8, opcode, target);
            self.note_insert::<false>(EntryKind::Jte, out);
            self.scd[bid].rop_v = false;
        }
        target
    }
}

fn vbbi_mix(pc: u64, hint: u64) -> u64 {
    (pc >> 2) ^ hint.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(17)
}
