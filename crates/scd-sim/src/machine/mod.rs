//! The simulated embedded core: functional execution of the RV64-subset
//! ISA plus a cycle-approximate in-order timing model.
//!
//! Timing follows the structure of small in-order cores (MinorCPU /
//! Rocket, Table II of the paper):
//!
//! * one issue slot per instruction (an optional second slot models the
//!   dual-issue A8-like core of Section VI-C2),
//! * per-register ready cycles model load-use and long-latency interlocks,
//! * the front end charges redirect penalties decided by the branch
//!   predictor complex (direction predictor + BTB + RAS, or VBBI),
//! * I/D cache, TLB and DRAM stalls are charged at the faulting
//!   instruction (blocking, as in-order cores do),
//! * `bop` implements the paper's stall scheme: fetch waits until Rop is
//!   available, then redirects through the BTB JTE with no bubble on hit.
//!
//! # Module map
//!
//! The machine is decomposed into pipeline-stage modules, one per
//! concern, all operating on the shared [`Machine`] state defined here:
//!
//! * [`frontend`](self) — fetch timing, the branch predictor complex
//!   (direction + BTB + RAS + VBBI/ITTAGE), redirects, and the SCD
//!   `bop`/JTE short-circuit and `jru` slow path;
//! * [`execute`](self) — functional ISA semantics, the issue/scoreboard
//!   model (dual-issue pairing, operand readiness);
//! * [`memory`](self) — D-cache / D-TLB / L2 / DRAM charging;
//! * [`retire`](self) — per-retirement statistics, trace-event emission,
//!   the stat-invariant checkpoint, and fault-injection hooks;
//! * [`state`](self) — run/exit types, guest annotations, profiling,
//!   and checkpoint snapshot/restore.
//!
//! Each retirement flows frontend → execute (→ memory for loads/stores)
//! → retire; [`Machine::run`] is the loop that sequences the stages.
//! The decomposition is purely structural: stage boundaries change
//! neither cycle charging order nor statistics (enforced bit-for-bit by
//! `tests/golden_stats.rs`).

mod execute;
mod frontend;
mod memory;
mod replay;
mod retire;
mod sampling;
mod state;
mod warm;
#[cfg(test)]
mod tests;

pub use state::{Annotations, Exit, Profile, SimError, VbbiHint, WatchdogKind};

use crate::btb::{Btb, BtbConfig};
use crate::cache::Cache;
use crate::config::{ScdConfig, SimConfig};
use crate::fault::{FaultEvent, FaultPlan};
use crate::ittage::Ittage;
use crate::mem::Memory;
use crate::predictor::{Direction, Ras};
use crate::stats::SimStats;
use crate::tlb::Tlb;
use crate::trace::{
    BopEvent, BranchEvent, DataAccess, FetchAccess, Inserts, InstClass, JteFlushEvent,
    RedirectEvent, SinkSlot, StatInvariants, TraceSink,
};
use scd_isa::{FReg, Inst, Program, Reg};
use std::sync::Arc;

/// Maximum number of SCD branch IDs supported by the model.
pub const MAX_BRANCH_IDS: usize = 4;

/// Which run loop untraced machines take (observed machines always run
/// interleaved — their per-retirement hooks need functional execution
/// in-line with timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplayMode {
    /// Pin the interleaved reference loop.
    Off,
    /// Execute-ahead replay when the host has ≥ 2 hardware threads,
    /// interleaved otherwise. The decoupled engine buys its speed from
    /// overlapping the functional producer with the timing consumer; on
    /// a single-hardware-thread host the two serialize into fill +
    /// drain — strictly more work than the fused loop — so falling back
    /// is the faster choice. Either loop yields bit-identical
    /// [`SimStats`](crate::SimStats).
    Auto,
    /// Execute-ahead replay unconditionally (the bit-identity tests use
    /// this so the real engine is exercised even on one-CPU hosts).
    Force,
}

/// Whether the host can actually overlap the replay producer and
/// consumer threads (cached: the answer cannot change mid-process).
fn host_can_pipeline() -> bool {
    static CAN: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CAN.get_or_init(|| std::thread::available_parallelism().is_ok_and(|n| n.get() >= 2))
}

#[derive(Debug, Clone, Copy, Default)]
struct ScdRegs {
    rop_v: bool,
    rop_d: u64,
    rmask: u64,
    rbop_pc: u64,
    /// Cycle at which Rop becomes visible to the fetch stage.
    rop_ready: u64,
}

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    cfg: SimConfig,
    /// Decoded text, shared with the [`Program`] (and every other
    /// machine built from it) — the sweep never re-clones a program.
    insts: Arc<[Inst]>,
    /// Per-instruction static metadata, parallel to `insts`; rebuilt by
    /// [`Machine::set_annotations`]. See [`StaticInfo`].
    static_info: Vec<StaticInfo>,
    /// Compact per-instruction dispatch table for the warming consumer,
    /// parallel to `insts`; rebuilt with `static_info`. See
    /// [`warm::WarmInfo`].
    warm_info: Vec<warm::WarmInfo>,
    text_base: u64,
    text_end: u64,

    /// Integer register file (x0 kept zero).
    pub regs: [u64; 32],
    /// FP register file (raw f64 bits).
    pub fregs: [u64; 32],
    /// Program counter.
    pub pc: u64,
    /// Guest memory.
    pub mem: Memory,

    icache: Cache,
    dcache: Cache,
    l2: Option<Cache>,
    itlb: Tlb,
    dtlb: Tlb,
    direction: Direction,
    btb: Btb,
    /// CBT-style dedicated JTE table (Section VII comparison).
    jte_table: Option<Btb>,
    ras: Ras,
    ittage: Ittage,
    scd: [ScdRegs; MAX_BRANCH_IDS],

    cycle: u64,
    /// Cycle each architectural register's value becomes available.
    /// Entry 32 is a scoreboard sentinel that stays 0 forever: absent
    /// source-operand slots in [`StaticInfo`] point at it so
    /// [`Machine::issue`] reads readiness branch-free.
    xready: [u64; 33],
    fready: [u64; 33],
    issued_this_cycle: usize,
    /// Bit of the previous instruction's integer destination (0 when it
    /// had none, or wrote x0) — the dual-issue RAW pairing hazard as a
    /// mask test.
    prev_def_mask: u32,
    prev_fdef_mask: u32,
    prev_was_mem: bool,

    ann: Annotations,
    next_flush_at: u64,
    output: Vec<u8>,
    profile: Option<Profile>,

    tracer: SinkSlot,
    invariants: Option<StatInvariants>,
    scratch: Scratch,

    fault_plan: Option<FaultPlan>,
    cycle_budget: Option<u64>,
    wall_budget: Option<std::time::Duration>,
    /// Untraced runs take the execute-ahead replay loop (see
    /// [`replay`](self)) when the host can pipeline it; see
    /// [`Machine::set_replay`] / [`Machine::force_replay`].
    replay: ReplayMode,
    /// Test hook: make the replay producer thread panic mid-fill, so the
    /// panic-containment path (`SimError::ProducerPanic`) is testable.
    test_producer_panic: bool,

    /// Fetch-streak fast path (untraced loops only): the I-cache block
    /// of the most recent fetch, and how many subsequent same-block
    /// fetches have been deferred — not yet applied to the I-cache /
    /// I-TLB MRU state and access counters. A streak of same-line
    /// fetches is all hits charging zero cycles, so deferring is
    /// state-exact once [`Machine::flush_fetch_streak`] materializes it
    /// (at every run-loop exit and before any non-streak fetch).
    fetch_blk: u64,
    fetch_streak: u64,

    /// Decoded-text vector for the sampled fast-forward legs, handed
    /// back by each leg's reference core so hundreds of legs per run
    /// don't re-collect it from `insts`. Pure derived cache: never
    /// snapshotted.
    ff_decoded: Option<Vec<Option<Inst>>>,

    /// Run statistics.
    pub stats: SimStats,
}

// The machine owns every piece of its state — including the trace sink,
// which is why `TraceSink: Send` — so whole runs can move to worker
// threads. Compile-time proof:
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
};

/// Per-retirement attribution the timing helpers fill in; drained into a
/// [`crate::TraceEvent`] after each instruction.
#[derive(Debug, Clone, Copy, Default)]
struct Scratch {
    fetch: FetchAccess,
    data: Option<DataAccess>,
    branch: Option<BranchEvent>,
    redirect: Option<RedirectEvent>,
    bop: Option<BopEvent>,
    inserts: Inserts,
    flush: Option<JteFlushEvent>,
    fault: Option<FaultEvent>,
    /// Effective address of this retirement's load/store, captured at
    /// execute (the base register may be overwritten by the writeback,
    /// so it cannot be recomputed afterwards).
    ea: Option<u64>,
    /// Store data, truncated to the access width.
    store: Option<u64>,
}

/// Static per-instruction metadata, precomputed once per (program,
/// annotations) pair so the per-retirement hot path replaces every
/// annotation-table search (`partition_point`/`binary_search` over
/// dispatch ranges, dispatch jumps and VBBI hints) and every decode-fact
/// recomputation (`InstClass::of`, `def_xreg`, `use_xregs`, ...) with
/// one indexed load. Purely derived state: it never appears in
/// snapshots and cannot alter timing or statistics.
#[derive(Debug, Clone, Copy)]
struct StaticInfo {
    /// Trace classification ([`InstClass::of`]).
    class: InstClass,
    /// The instruction's PC lies inside a dispatcher range.
    in_dispatch: bool,
    /// The instruction's PC is a registered dispatch jump.
    dispatch_jump: bool,
    /// Load or store (the dual-issue memory-port pairing hazard).
    is_mem: bool,
    /// Destination integer register.
    def_x: Option<Reg>,
    /// Destination FP register.
    def_f: Option<FReg>,
    /// VBBI hint registered on this (jump) PC.
    vbbi: Option<VbbiHint>,
    /// Source slots as indices into the 33-entry ready arrays (32 = the
    /// always-ready sentinel for absent slots), so the scoreboard reads
    /// readiness without unpacking `Option`s.
    xsrc: [u8; 2],
    fsrc: [u8; 2],
    /// Source register bitmasks (x0 excluded — it never carries a RAW
    /// hazard) for the dual-issue pairing test.
    src_x_mask: u32,
    src_f_mask: u32,
    /// Destination bitmasks (0 for none or x0), matched against the next
    /// instruction's source masks.
    def_x_mask: u32,
    def_f_mask: u32,
}

impl StaticInfo {
    /// The annotation-independent part; [`Machine::rebuild_static_info`]
    /// fills in the PC-dependent fields.
    fn of(inst: &Inst) -> Self {
        let use_x = inst.use_xregs();
        let use_f = inst.use_fregs();
        let def_x = inst.def_xreg();
        let def_f = inst.def_freg();
        let mut xsrc = [32u8; 2];
        let mut src_x_mask = 0u32;
        for (slot, r) in use_x.into_iter().flatten().enumerate() {
            xsrc[slot] = r.index() as u8;
            if !r.is_zero() {
                src_x_mask |= 1 << r.index();
            }
        }
        let mut fsrc = [32u8; 2];
        let mut src_f_mask = 0u32;
        for (slot, r) in use_f.into_iter().flatten().enumerate() {
            fsrc[slot] = r.index() as u8;
            src_f_mask |= 1 << r.index();
        }
        StaticInfo {
            class: InstClass::of(inst),
            in_dispatch: false,
            dispatch_jump: false,
            is_mem: inst.is_load() || inst.is_store(),
            def_x,
            def_f,
            vbbi: None,
            xsrc,
            fsrc,
            src_x_mask,
            src_f_mask,
            def_x_mask: def_x.map_or(0, |r| if r.is_zero() { 0 } else { 1 << r.index() }),
            def_f_mask: def_f.map_or(0, |r| 1 << r.index()),
        }
    }
}

impl Machine {
    /// Builds a machine for `cfg`, loading `program`'s text and rodata.
    /// The decoded text is shared with `program` (no per-machine clone).
    pub fn new(cfg: SimConfig, program: &Program) -> Self {
        let mut mem = Memory::new();
        mem.add_segment("text", program.text_base, 4 * program.words.len() as u64);
        for (i, w) in program.words.iter().enumerate() {
            mem.write_bytes(program.text_base + 4 * i as u64, &w.to_le_bytes());
        }
        if !program.rodata.is_empty() {
            mem.add_segment("rodata", program.rodata_base, program.rodata.len() as u64);
            mem.write_bytes(program.rodata_base, &program.rodata);
        }
        let flush_at = cfg.scd.flush_interval.unwrap_or(u64::MAX);
        let mut m = Machine {
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            l2: cfg.l2.map(Cache::new),
            itlb: Tlb::new(cfg.itlb_entries),
            dtlb: Tlb::new(cfg.dtlb_entries),
            direction: Direction::new(cfg.direction),
            btb: Btb::new(cfg.btb),
            jte_table: cfg.scd.dedicated_jte_table.then(|| {
                Btb::new(BtbConfig::fully_assoc(
                    cfg.scd.jte_table_entries,
                    crate::cache::Replacement::Lru,
                ))
            }),
            ras: Ras::new(cfg.ras_entries),
            ittage: Ittage::new(),
            scd: Default::default(),
            cycle: 0,
            xready: [0; 33],
            fready: [0; 33],
            issued_this_cycle: 0,
            prev_def_mask: 0,
            prev_fdef_mask: 0,
            prev_was_mem: false,
            ann: Annotations::default(),
            next_flush_at: flush_at,
            output: Vec::new(),
            profile: None,
            tracer: SinkSlot(None),
            // Debug builds self-check the counters by default; release
            // builds opt in via enable_invariants().
            invariants: cfg!(debug_assertions).then(|| StatInvariants::new(4096)),
            scratch: Scratch::default(),
            fault_plan: None,
            cycle_budget: None,
            wall_budget: None,
            replay: ReplayMode::Auto,
            test_producer_panic: false,
            fetch_blk: u64::MAX,
            fetch_streak: 0,
            ff_decoded: None,
            stats: SimStats::default(),
            regs: [0; 32],
            fregs: [0; 32],
            pc: program.text_base,
            mem,
            insts: Arc::clone(&program.insts),
            static_info: Vec::new(),
            warm_info: Vec::new(),
            text_base: program.text_base,
            text_end: program.text_end(),
            cfg,
        };
        m.rebuild_static_info();
        m
    }

    /// Maps an additional zero-filled memory segment.
    pub fn map(&mut self, name: &'static str, base: u64, size: u64) {
        self.mem.add_segment(name, base, size);
    }

    /// Installs guest annotations (dispatch ranges, VBBI hints).
    pub fn set_annotations(&mut self, mut ann: Annotations) {
        ann.normalize();
        self.ann = ann;
        self.rebuild_static_info();
    }

    /// Recomputes the [`StaticInfo`] side-table from the decoded text and
    /// the current annotations.
    fn rebuild_static_info(&mut self) {
        let info: Vec<StaticInfo> = self
            .insts
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let pc = self.text_base + 4 * i as u64;
                let mut si = StaticInfo::of(inst);
                si.in_dispatch = self.ann.contains_dispatch(pc);
                si.dispatch_jump = self.ann.dispatch_jumps.binary_search(&pc).is_ok();
                si.vbbi = self
                    .ann
                    .vbbi_hints
                    .binary_search_by_key(&pc, |h| h.jump_pc)
                    .ok()
                    .map(|j| self.ann.vbbi_hints[j]);
                si
            })
            .collect();
        self.warm_info = self
            .insts
            .iter()
            .zip(&info)
            .map(|(inst, si)| warm::WarmInfo::of(inst, si.in_dispatch, &self.cfg))
            .collect();
        self.static_info = info;
    }

    /// The static side-table entry for the instruction at `pc`, which
    /// must lie inside the text section (the run loop bounds-checks
    /// before every retirement).
    #[inline]
    fn sinfo(&self, pc: u64) -> &StaticInfo {
        &self.static_info[((pc - self.text_base) / 4) as usize]
    }

    /// Sets an integer register (x0 writes are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Read-only view of the BTB (for tests and diagnostics).
    pub fn btb(&self) -> &Btb {
        &self.btb
    }

    /// Enables per-PC profiling (retired instructions and attributed
    /// cycles per static instruction). Costs a little simulation speed.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(Profile {
            text_base: self.text_base,
            insts: vec![0; self.insts.len()],
            cycles: vec![0; self.insts.len()],
        });
    }

    /// The collected profile, if profiling was enabled.
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_ref()
    }

    /// Installs a trace sink receiving one [`crate::TraceEvent`] per
    /// retired instruction. Install before the first retirement so
    /// sequence numbers start at 0. The machine owns the sink for the
    /// duration of the run; recover it (and its accumulated state) with
    /// [`Machine::take_trace_sink`] + [`crate::downcast_sink`].
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.0 = Some(sink);
    }

    /// Removes and returns the installed trace sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.0.take()
    }

    /// Enables the cross-counter self-checker, asserting the stat
    /// identities every `every` retirements (default-on in debug builds
    /// with `every = 4096`). Must be enabled before the first retirement:
    /// the checker replays the event stream from scratch.
    pub fn enable_invariants(&mut self, every: u64) {
        assert_eq!(
            self.stats.instructions, 0,
            "invariants must be enabled before the first retirement"
        );
        self.invariants = Some(StatInvariants::new(every));
    }

    /// Disables the cross-counter self-checker.
    pub fn disable_invariants(&mut self) {
        self.invariants = None;
    }

    /// Arms a fault-injection plan. From the next `run` on, the plan
    /// injects micro-architectural faults at its scheduled instruction
    /// counts; every injection is recorded on that retirement's trace
    /// event. Faults only touch predictive state (BTB/JTE, RAS,
    /// predictors, cache/TLB tags), so architectural results must be
    /// unchanged — [`crate::diff_architectural`] checks exactly that.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The armed fault plan, if any (e.g. to read its injection count).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Aborts `run` with a [`SimError::Watchdog`] once the simulated
    /// cycle counter reaches `cycles`. Detects livelocked guests:
    /// retirement always advances the cycle counter, so a guest that
    /// never halts exhausts any finite cycle budget.
    pub fn set_cycle_budget(&mut self, cycles: u64) {
        self.cycle_budget = Some(cycles);
    }

    /// Aborts `run` with a [`SimError::Watchdog`] once `budget` host
    /// wall-clock time has elapsed (checked every 4096 retirements).
    pub fn set_wall_budget(&mut self, budget: std::time::Duration) {
        self.wall_budget = Some(budget);
    }

    /// Selects the run loop for untraced machines: `true` (the default)
    /// takes the execute-ahead replay path on hosts with at least two
    /// hardware threads (on a single-CPU host the producer/consumer
    /// pair cannot overlap, so the interleaved loop — bit-identical by
    /// construction — is the faster engine and is substituted
    /// silently); `false` pins the interleaved reference loop.
    /// Irrelevant once any observer (tracer, invariants, profiling,
    /// fault plan) is attached — observers always run interleaved,
    /// since their per-retirement hooks need functional execution
    /// in-line with timing.
    pub fn set_replay(&mut self, replay: bool) {
        self.replay = if replay {
            ReplayMode::Auto
        } else {
            ReplayMode::Off
        };
    }

    /// Like [`Machine::set_replay`]`(true)`, minus the single-CPU
    /// fallback: the threaded execute-ahead engine runs even when the
    /// host cannot overlap the two threads. The bit-identity tests use
    /// this so the real engine is exercised on any host.
    pub fn force_replay(&mut self) {
        self.replay = ReplayMode::Force;
    }

    /// Which engine an *untraced* `run` on this machine resolves to
    /// right now: `"replay"` (the execute-ahead producer/consumer pair)
    /// or `"interleaved"` (the fused reference loop, either pinned or
    /// the automatic single-CPU fallback). Perf records store this next
    /// to the host CPU count so cross-box numbers are interpretable —
    /// the two engines have very different throughput profiles.
    /// Machines with an observer attached always run interleaved
    /// regardless of what this reports.
    pub fn replay_engine(&self) -> &'static str {
        let pipelined = match self.replay {
            ReplayMode::Off => false,
            ReplayMode::Auto => host_can_pipeline(),
            ReplayMode::Force => true,
        };
        if pipelined {
            "replay"
        } else {
            "interleaved"
        }
    }

    /// Makes the next execute-ahead replay producer thread panic while
    /// filling its first batch. Exists solely so tests can prove the
    /// containment contract of [`SimError::ProducerPanic`](crate::SimError);
    /// it has no effect on the interleaved loop.
    #[doc(hidden)]
    pub fn inject_replay_producer_panic(&mut self) {
        self.test_producer_panic = true;
    }

    /// Bytes the guest has written through the putchar `ecall` so far.
    /// (A successful exit takes the buffer; this view is for comparing
    /// partial runs.)
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Runs until the guest halts via `ecall` (a7 = 0) or a limit/error.
    ///
    /// One loop iteration retires exactly one instruction, sequencing
    /// the stage modules: frontend (fetch timing), execute (issue +
    /// functional semantics, charging data-side stalls through the
    /// memory stage), then retire (stats, trace event, invariant
    /// checkpoint).
    ///
    /// Dispatches once per call onto one of two monomorphized loops: the
    /// *observed* loop (a tracer, the invariant checker, profiling or a
    /// fault plan is attached) carries full per-retirement attribution,
    /// while the fast loop skips every observer-only write. Both charge
    /// identical cycles and statistics — `tests/golden_stats.rs` holds
    /// the paths to bit-identical [`SimStats`](crate::SimStats).
    ///
    /// # Errors
    /// Returns [`SimError`] on memory faults, runaway PCs, `ebreak`, or
    /// when `max_insts` is exhausted.
    pub fn run(&mut self, max_insts: u64) -> Result<Exit, SimError> {
        let observed = self.tracer.0.is_some()
            || self.invariants.is_some()
            || self.profile.is_some()
            || self.fault_plan.is_some();
        if observed {
            self.run_impl::<true>(max_insts)
        } else if match self.replay {
            ReplayMode::Off => false,
            ReplayMode::Auto => host_can_pipeline(),
            ReplayMode::Force => true,
        } {
            self.run_replay(max_insts)
        } else {
            self.run_impl::<false>(max_insts)
        }
    }

    fn run_impl<const OBSERVED: bool>(&mut self, max_insts: u64) -> Result<Exit, SimError> {
        // Every exit (exit ecall, limit, watchdog, PC/memory error)
        // funnels through here so a pending fetch streak is always
        // materialized before the caller can observe stats or state.
        let r = self.run_loop::<OBSERVED, false>(max_insts);
        self.flush_fetch_streak();
        r
    }

    /// Runs in [`ExecMode::Warming`](crate::ExecMode): the interleaved
    /// loop with the cycle clock frozen. Caches, TLBs, predictors, the
    /// BTB/JTE overlay and every statistics counter update exactly as in
    /// detailed mode, but no cycles are charged and the issue scoreboard
    /// is bypassed. The sampled scheduler uses this to repair
    /// micro-architectural state after a fast-forward leg; the counters
    /// it accumulates here are later overwritten by the scaled estimate.
    ///
    /// # Errors
    /// Same contract as [`Machine::run`]; `max_insts` is the same
    /// absolute retirement count.
    pub fn run_warming(&mut self, max_insts: u64) -> Result<Exit, SimError> {
        let r = self.run_loop::<false, true>(max_insts);
        self.flush_fetch_streak();
        r
    }

    fn run_loop<const OBSERVED: bool, const WARMING: bool>(
        &mut self,
        max_insts: u64,
    ) -> Result<Exit, SimError> {
        let scd_cfg: ScdConfig = self.cfg.scd;
        let nbids = scd_cfg.branch_ids.min(MAX_BRANCH_IDS);
        let cycle_budget = self.cycle_budget;
        let wall_budget = self.wall_budget;
        let wall_start = std::time::Instant::now();
        loop {
            if self.stats.instructions >= max_insts {
                self.finalize_partial();
                return Err(SimError::InstLimit { limit: max_insts });
            }
            if cycle_budget.is_some_and(|b| self.cycle >= b) {
                self.finalize_partial();
                return Err(SimError::Watchdog {
                    kind: WatchdogKind::Cycles,
                    instructions: self.stats.instructions,
                    cycles: self.cycle,
                });
            }
            if let Some(wall) = wall_budget {
                if self.stats.instructions.is_multiple_of(4096) && wall_start.elapsed() >= wall {
                    self.finalize_partial();
                    return Err(SimError::Watchdog {
                        kind: WatchdogKind::WallClock,
                        instructions: self.stats.instructions,
                        cycles: self.cycle,
                    });
                }
            }
            let pc = self.pc;
            if pc < self.text_base || pc >= self.text_end || !pc.is_multiple_of(4) {
                return Err(SimError::PcOutOfRange { pc });
            }
            let idx = ((pc - self.text_base) / 4) as usize;
            let inst = self.insts[idx];
            let si = self.static_info[idx];
            if OBSERVED {
                self.scratch = Scratch::default();
            }

            // ---- frontend + issue timing ----
            let cycle_before = self.cycle;
            if OBSERVED {
                self.fetch_timing::<OBSERVED, WARMING>(pc);
            } else {
                self.fetch_fast::<WARMING>(pc);
            }
            if !WARMING {
                self.issue(&si);
            }

            // ---- retire bookkeeping (counters, flush quantum, faults) ----
            self.begin_retirement::<OBSERVED>(si.in_dispatch, &scd_cfg);

            // ---- execute (functional semantics + per-class timing) ----
            let step = self.execute_inst::<OBSERVED, WARMING>(&inst, pc, nbids, &scd_cfg)?;

            if OBSERVED {
                if let Some(prof) = &mut self.profile {
                    prof.insts[idx] += 1;
                    prof.cycles[idx] += self.cycle - cycle_before;
                }

                // ---- trace emission + invariant checkpoint ----
                self.emit_retirement(
                    &si,
                    pc,
                    cycle_before,
                    step.next_pc,
                    step.exit_code.is_some(),
                );
            }

            if let Some(code) = step.exit_code {
                self.finalize_partial();
                return Ok(Exit {
                    code,
                    output: std::mem::take(&mut self.output),
                });
            }
            self.pc = step.next_pc;
        }
    }
}
