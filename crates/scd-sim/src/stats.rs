//! Execution statistics collected by the machine, with the derived
//! metrics the paper's figures report (speedup, MPKI, instruction
//! fractions).

use crate::btb::BtbStats;

/// Branch classes used for the Fig. 2 misprediction breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchClass {
    /// Conditional branch.
    Conditional,
    /// Direct unconditional jump (`jal`, including calls).
    Direct,
    /// Return (`jalr` through `ra`).
    Return,
    /// The interpreter's dispatch indirect jump (`jalr`/`jru` at a
    /// registered dispatch PC).
    IndirectDispatch,
    /// Any other indirect jump.
    IndirectOther,
}

/// Counters for one branch class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchCounters {
    /// Branches of this class retired.
    pub executed: u64,
    /// Of those, how many were mispredicted.
    pub mispredicted: u64,
}

/// Counters for one cache or TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounters {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty-line writebacks.
    pub writebacks: u64,
}

impl AccessCounters {
    /// Misses per kilo-instruction.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// Full statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles.
    pub cycles: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// Instructions retired from registered dispatcher PC ranges
    /// (Fig. 3).
    pub dispatch_instructions: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,

    /// Conditional branches.
    pub cond: BranchCounters,
    /// Direct unconditional jumps.
    pub direct: BranchCounters,
    /// Returns.
    pub ret: BranchCounters,
    /// The interpreter's dispatch indirect jumps.
    pub indirect_dispatch: BranchCounters,
    /// Other indirect jumps.
    pub indirect_other: BranchCounters,

    /// `bop` executions.
    pub bop_executed: u64,
    /// `bop` fast-path hits (short-circuited dispatches).
    pub bop_hits: u64,
    /// `bop` executions that fell back to the slow path (JTE miss,
    /// invalid Rop, fall-through, or SCD disabled). Always satisfies
    /// `bop_hits + bop_misses == bop_executed`.
    pub bop_misses: u64,
    /// Cycles spent stalled waiting for Rop at fetch.
    pub bop_stall_cycles: u64,
    /// `jru` executions.
    pub jru_executed: u64,

    /// L1 instruction cache.
    pub icache: AccessCounters,
    /// L1 data cache.
    pub dcache: AccessCounters,
    /// Unified L2 (all-zero when absent).
    pub l2: AccessCounters,
    /// Instruction TLB.
    pub itlb: AccessCounters,
    /// Data TLB.
    pub dtlb: AccessCounters,

    /// BTB/JTE interaction counters.
    pub btb: BtbStats,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Accounts one retired branch of `class`.
    pub fn record_branch(&mut self, class: BranchClass, mispredicted: bool) {
        let c = match class {
            BranchClass::Conditional => &mut self.cond,
            BranchClass::Direct => &mut self.direct,
            BranchClass::Return => &mut self.ret,
            BranchClass::IndirectDispatch => &mut self.indirect_dispatch,
            BranchClass::IndirectOther => &mut self.indirect_other,
        };
        c.executed += 1;
        c.mispredicted += mispredicted as u64;
    }

    /// Total branch mispredictions across classes.
    pub fn total_mispredictions(&self) -> u64 {
        self.cond.mispredicted
            + self.direct.mispredicted
            + self.ret.mispredicted
            + self.indirect_dispatch.mispredicted
            + self.indirect_other.mispredicted
    }

    /// Branch misses per kilo-instruction (Fig. 9).
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_mispredictions() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// MPKI contributed by the dispatch indirect jump alone (Fig. 2).
    pub fn dispatch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.indirect_dispatch.mispredicted as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// I-cache misses per kilo-instruction (Fig. 10).
    pub fn icache_mpki(&self) -> f64 {
        self.icache.mpki(self.instructions)
    }

    /// Fraction of dynamic instructions spent in the dispatcher (Fig. 3).
    pub fn dispatch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dispatch_instructions as f64 / self.instructions as f64
        }
    }
}

/// Geometric mean helper for the paper's GEOMEAN rows.
///
/// Total on every input: non-positive values have no logarithm, so they
/// are skipped rather than poisoning the mean, and `None` comes back
/// when nothing contributes (empty slice, or all values non-positive).
/// Speedups and normalized ratios are positive by construction, so a
/// skipped value usually means a bug upstream — worth a caller-side
/// check — but an aggregation driver fed an empty or degenerate cell
/// must not panic mid-sweep.
pub fn geomean(values: &[f64]) -> Option<f64> {
    debug_assert!(
        values.iter().all(|v| v.is_finite()),
        "geomean given non-finite value in {values:?}"
    );
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for &v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    (n > 0).then(|| (log_sum / f64::from(n)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = SimStats { cycles: 2000, instructions: 1000, ..Default::default() };
        s.record_branch(BranchClass::IndirectDispatch, true);
        s.record_branch(BranchClass::IndirectDispatch, false);
        s.record_branch(BranchClass::Conditional, true);
        assert_eq!(s.total_mispredictions(), 2);
        assert!((s.branch_mpki() - 2.0).abs() < 1e-12);
        assert!((s.dispatch_mpki() - 1.0).abs() < 1e-12);
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.cpi() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dispatch_fraction() {
        let s = SimStats { instructions: 400, dispatch_instructions: 100, ..Default::default() };
        assert!((s.dispatch_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_total() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[0.0, -3.0]), None);
        // Non-positive values are skipped, not averaged in as garbage.
        assert!((geomean(&[0.0, 2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geomean(&[-1.0, 5.0]).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn access_mpki() {
        let a = AccessCounters { accesses: 100, misses: 5, writebacks: 0 };
        assert!((a.mpki(1000) - 5.0).abs() < 1e-12);
        assert_eq!(a.mpki(0), 0.0);
    }
}
