//! Execution statistics collected by the machine, with the derived
//! metrics the paper's figures report (speedup, MPKI, instruction
//! fractions).

use crate::btb::BtbStats;

/// Branch classes used for the Fig. 2 misprediction breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchClass {
    /// Conditional branch.
    Conditional,
    /// Direct unconditional jump (`jal`, including calls).
    Direct,
    /// Return (`jalr` through `ra`).
    Return,
    /// The interpreter's dispatch indirect jump (`jalr`/`jru` at a
    /// registered dispatch PC).
    IndirectDispatch,
    /// Any other indirect jump.
    IndirectOther,
}

/// Counters for one branch class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchCounters {
    /// Branches of this class retired.
    pub executed: u64,
    /// Of those, how many were mispredicted.
    pub mispredicted: u64,
}

/// Counters for one cache or TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounters {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty-line writebacks.
    pub writebacks: u64,
}

impl AccessCounters {
    /// Misses per kilo-instruction.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// Full statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles.
    pub cycles: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// Instructions retired from registered dispatcher PC ranges
    /// (Fig. 3).
    pub dispatch_instructions: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,

    /// Conditional branches.
    pub cond: BranchCounters,
    /// Direct unconditional jumps.
    pub direct: BranchCounters,
    /// Returns.
    pub ret: BranchCounters,
    /// The interpreter's dispatch indirect jumps.
    pub indirect_dispatch: BranchCounters,
    /// Other indirect jumps.
    pub indirect_other: BranchCounters,

    /// `bop` executions.
    pub bop_executed: u64,
    /// `bop` fast-path hits (short-circuited dispatches).
    pub bop_hits: u64,
    /// `bop` executions that fell back to the slow path (JTE miss,
    /// invalid Rop, fall-through, or SCD disabled). Always satisfies
    /// `bop_hits + bop_misses == bop_executed`.
    pub bop_misses: u64,
    /// Cycles spent stalled waiting for Rop at fetch.
    pub bop_stall_cycles: u64,
    /// `jru` executions.
    pub jru_executed: u64,

    /// L1 instruction cache.
    pub icache: AccessCounters,
    /// L1 data cache.
    pub dcache: AccessCounters,
    /// Unified L2 (all-zero when absent).
    pub l2: AccessCounters,
    /// Instruction TLB.
    pub itlb: AccessCounters,
    /// Data TLB.
    pub dtlb: AccessCounters,

    /// BTB/JTE interaction counters.
    pub btb: BtbStats,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Accounts one retired branch of `class`.
    pub fn record_branch(&mut self, class: BranchClass, mispredicted: bool) {
        let c = match class {
            BranchClass::Conditional => &mut self.cond,
            BranchClass::Direct => &mut self.direct,
            BranchClass::Return => &mut self.ret,
            BranchClass::IndirectDispatch => &mut self.indirect_dispatch,
            BranchClass::IndirectOther => &mut self.indirect_other,
        };
        c.executed += 1;
        c.mispredicted += mispredicted as u64;
    }

    /// Total branch mispredictions across classes.
    pub fn total_mispredictions(&self) -> u64 {
        self.cond.mispredicted
            + self.direct.mispredicted
            + self.ret.mispredicted
            + self.indirect_dispatch.mispredicted
            + self.indirect_other.mispredicted
    }

    /// Branch misses per kilo-instruction (Fig. 9).
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_mispredictions() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// MPKI contributed by the dispatch indirect jump alone (Fig. 2).
    pub fn dispatch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.indirect_dispatch.mispredicted as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// I-cache misses per kilo-instruction (Fig. 10).
    pub fn icache_mpki(&self) -> f64 {
        self.icache.mpki(self.instructions)
    }

    /// Fraction of dynamic instructions spent in the dispatcher (Fig. 3).
    pub fn dispatch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dispatch_instructions as f64 / self.instructions as f64
        }
    }

    /// Every raw counter, flattened in one fixed order. The interval
    /// arithmetic below ([`SimStats::delta_since`] /
    /// [`SimStats::accumulate`] / [`SimStats::scaled`]) iterates this
    /// array so a new counter field only needs to be added here (and in
    /// `counters_mut`, kept in the same order) once.
    fn counters(&self) -> [u64; 42] {
        [
            self.cycles,
            self.instructions,
            self.dispatch_instructions,
            self.loads,
            self.stores,
            self.cond.executed,
            self.cond.mispredicted,
            self.direct.executed,
            self.direct.mispredicted,
            self.ret.executed,
            self.ret.mispredicted,
            self.indirect_dispatch.executed,
            self.indirect_dispatch.mispredicted,
            self.indirect_other.executed,
            self.indirect_other.mispredicted,
            self.bop_executed,
            self.bop_hits,
            self.bop_misses,
            self.bop_stall_cycles,
            self.jru_executed,
            self.icache.accesses,
            self.icache.misses,
            self.icache.writebacks,
            self.dcache.accesses,
            self.dcache.misses,
            self.dcache.writebacks,
            self.l2.accesses,
            self.l2.misses,
            self.l2.writebacks,
            self.itlb.accesses,
            self.itlb.misses,
            self.itlb.writebacks,
            self.dtlb.accesses,
            self.dtlb.misses,
            self.dtlb.writebacks,
            self.btb.jte_inserts,
            self.btb.jte_cap_skips,
            self.btb.btb_evicted_by_jte,
            self.btb.jte_evictions,
            self.btb.btb_blocked_by_jte,
            self.btb.jte_flushes,
            self.btb.jte_flushed,
        ]
    }

    /// Mutable borrows of every counter, in [`SimStats::counters`] order
    /// (distinct fields, so the simultaneous borrows are fine).
    fn counters_mut(&mut self) -> [&mut u64; 42] {
        [
            &mut self.cycles,
            &mut self.instructions,
            &mut self.dispatch_instructions,
            &mut self.loads,
            &mut self.stores,
            &mut self.cond.executed,
            &mut self.cond.mispredicted,
            &mut self.direct.executed,
            &mut self.direct.mispredicted,
            &mut self.ret.executed,
            &mut self.ret.mispredicted,
            &mut self.indirect_dispatch.executed,
            &mut self.indirect_dispatch.mispredicted,
            &mut self.indirect_other.executed,
            &mut self.indirect_other.mispredicted,
            &mut self.bop_executed,
            &mut self.bop_hits,
            &mut self.bop_misses,
            &mut self.bop_stall_cycles,
            &mut self.jru_executed,
            &mut self.icache.accesses,
            &mut self.icache.misses,
            &mut self.icache.writebacks,
            &mut self.dcache.accesses,
            &mut self.dcache.misses,
            &mut self.dcache.writebacks,
            &mut self.l2.accesses,
            &mut self.l2.misses,
            &mut self.l2.writebacks,
            &mut self.itlb.accesses,
            &mut self.itlb.misses,
            &mut self.itlb.writebacks,
            &mut self.dtlb.accesses,
            &mut self.dtlb.misses,
            &mut self.dtlb.writebacks,
            &mut self.btb.jte_inserts,
            &mut self.btb.jte_cap_skips,
            &mut self.btb.btb_evicted_by_jte,
            &mut self.btb.jte_evictions,
            &mut self.btb.btb_blocked_by_jte,
            &mut self.btb.jte_flushes,
            &mut self.btb.jte_flushed,
        ]
    }

    /// Counter-wise `self − base`. Both views must come from the same
    /// monotone run (`base` earlier), which every counter here is;
    /// saturating guards against misuse rather than wrapping.
    pub fn delta_since(&self, base: &SimStats) -> SimStats {
        let mut d = SimStats::default();
        let a = self.counters();
        let b = base.counters();
        for (dst, (x, y)) in d.counters_mut().into_iter().zip(a.into_iter().zip(b)) {
            *dst = x.saturating_sub(y);
        }
        d
    }

    /// Counter-wise `self += other` (per-interval accumulation).
    pub fn accumulate(&mut self, other: &SimStats) {
        let o = other.counters();
        for (dst, v) in self.counters_mut().into_iter().zip(o) {
            *dst += v;
        }
    }

    /// Counter-wise scaling by `num / den` with u128 intermediates and
    /// round-to-nearest — the sampled-run extrapolation from measured
    /// windows to the whole run.
    pub fn scaled(&self, num: u64, den: u64) -> SimStats {
        let den = den.max(1) as u128;
        let mut s = SimStats::default();
        let a = self.counters();
        for (dst, v) in s.counters_mut().into_iter().zip(a) {
            *dst = ((v as u128 * num as u128 + den / 2) / den) as u64;
        }
        s
    }
}

/// Geometric mean helper for the paper's GEOMEAN rows.
///
/// Total on every input: non-positive values have no logarithm, so they
/// are skipped rather than poisoning the mean, and `None` comes back
/// when nothing contributes (empty slice, or all values non-positive).
/// Speedups and normalized ratios are positive by construction, so a
/// skipped value usually means a bug upstream — worth a caller-side
/// check — but an aggregation driver fed an empty or degenerate cell
/// must not panic mid-sweep.
pub fn geomean(values: &[f64]) -> Option<f64> {
    debug_assert!(
        values.iter().all(|v| v.is_finite()),
        "geomean given non-finite value in {values:?}"
    );
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for &v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    (n > 0).then(|| (log_sum / f64::from(n)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = SimStats {
            cycles: 2000,
            instructions: 1000,
            ..Default::default()
        };
        s.record_branch(BranchClass::IndirectDispatch, true);
        s.record_branch(BranchClass::IndirectDispatch, false);
        s.record_branch(BranchClass::Conditional, true);
        assert_eq!(s.total_mispredictions(), 2);
        assert!((s.branch_mpki() - 2.0).abs() < 1e-12);
        assert!((s.dispatch_mpki() - 1.0).abs() < 1e-12);
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.cpi() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dispatch_fraction() {
        let s = SimStats {
            instructions: 400,
            dispatch_instructions: 100,
            ..Default::default()
        };
        assert!((s.dispatch_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_total() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[0.0, -3.0]), None);
        // Non-positive values are skipped, not averaged in as garbage.
        assert!((geomean(&[0.0, 2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geomean(&[-1.0, 5.0]).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn interval_arithmetic_round_trips() {
        let mut base = SimStats {
            cycles: 100,
            instructions: 50,
            ..Default::default()
        };
        base.icache.accesses = 40;
        base.btb.jte_inserts = 7;
        let mut later = SimStats {
            cycles: 260,
            instructions: 130,
            ..Default::default()
        };
        later.icache.accesses = 90;
        later.btb.jte_inserts = 19;
        let d = later.delta_since(&base);
        assert_eq!(d.cycles, 160);
        assert_eq!(d.instructions, 80);
        assert_eq!(d.icache.accesses, 50);
        assert_eq!(d.btb.jte_inserts, 12);
        let mut re = base.clone();
        re.accumulate(&d);
        assert_eq!(re, later);
        // Scaling rounds to nearest.
        let s = d.scaled(3, 2);
        assert_eq!(s.cycles, 240);
        assert_eq!(s.btb.jte_inserts, 18);
        assert_eq!(d.scaled(1, 3).instructions, 27); // 80/3 = 26.67 → 27
    }

    #[test]
    fn access_mpki() {
        let a = AccessCounters {
            accesses: 100,
            misses: 5,
            writebacks: 0,
        };
        assert!((a.mpki(1000) - 5.0).abs() < 1e-12);
        assert_eq!(a.mpki(0), 0.0);
    }
}
