//! `scd serve` — the crash-safe batch front end over `scd-serve`.
//!
//! Reads a JSONL job file (one simulation request per line, see
//! `scd_serve::jobs`), runs the batch on a panic-isolated worker pool,
//! and streams one JSONL result line per job to stdout **in input
//! order** as results become available. With `--cache DIR` every job
//! first consults the content-addressed on-disk result cache (shared
//! with `sweep --cache`); completed jobs commit their entries even when
//! the batch is later interrupted. `--cache-stats` prints the cache's
//! end-of-run counter summary (hits/misses/stores/quarantined/
//! recovered) to stderr.
//!
//! A first SIGINT drains in-flight jobs — their result lines still
//! stream out and their cache entries commit — marks the unclaimed tail
//! `cancelled`, flushes the cache, and exits 130. A second SIGINT kills
//! the process (default disposition is restored by the handler).
//!
//! Exit codes: 0 every job ok, 1 some job failed (the batch still ran
//! to completion), 2 usage or malformed job file, 70 harness I/O
//! failure, 130 interrupted.

use crate::{usage, EXIT_INTERNAL};
use scd_serve::{
    install_sigint_flag, parse_jobs, render_result, run_batch, simulate_job, Cache, JobOutcome,
    EXIT_SIGINT,
};
use std::io::Write as _;
use std::process::exit;
use std::time::{Duration, Instant};

/// Some jobs failed; their result lines carry the error details.
const EXIT_JOBS_FAILED: i32 = 1;

struct ServeOpts {
    jobs: String,
    cache: Option<String>,
    cache_stats: bool,
    threads: usize,
    timeout: Option<Duration>,
}

fn parse_serve_opts(mut argv: impl Iterator<Item = String>) -> ServeOpts {
    let mut jobs = None;
    let mut cache = None;
    let mut cache_stats = false;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut timeout = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--jobs" => jobs = Some(argv.next().unwrap_or_else(|| usage())),
            "--cache" => cache = Some(argv.next().unwrap_or_else(|| usage())),
            "--cache-stats" => cache_stats = true,
            "--threads" => {
                let v = argv.next().unwrap_or_else(|| usage());
                threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--timeout" => {
                let v = argv.next().unwrap_or_else(|| usage());
                let secs: f64 = v.parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs <= 0.0 {
                    usage();
                }
                timeout = Some(Duration::from_secs_f64(secs));
            }
            _ => usage(),
        }
    }
    ServeOpts {
        jobs: jobs.unwrap_or_else(|| usage()),
        cache,
        cache_stats,
        threads,
        timeout,
    }
}

pub(crate) fn cmd_serve(argv: impl Iterator<Item = String>) {
    let o = parse_serve_opts(argv);
    let text = std::fs::read_to_string(&o.jobs).unwrap_or_else(|e| {
        eprintln!("cannot read jobs file {}: {e}", o.jobs);
        exit(EXIT_INTERNAL);
    });
    let jobs = parse_jobs(&text).unwrap_or_else(|e| {
        eprintln!("bad jobs file {}: {e}", o.jobs);
        exit(2);
    });
    if jobs.is_empty() {
        eprintln!("{}: no jobs", o.jobs);
        return;
    }
    let cache = o.cache.as_ref().map(|dir| {
        Cache::open(dir).unwrap_or_else(|e| {
            eprintln!("cannot open cache {dir}: {e}");
            exit(EXIT_INTERNAL);
        })
    });

    let interrupt = install_sigint_flag();
    let started = Instant::now();
    eprintln!(
        "serve: {} job(s), {} thread(s){}{}",
        jobs.len(),
        o.threads,
        o.timeout
            .map(|t| format!(", {:.0}s/job timeout", t.as_secs_f64()))
            .unwrap_or_default(),
        o.cache
            .as_ref()
            .map(|d| format!(", cache {d}"))
            .unwrap_or_default(),
    );

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let summary = run_batch(
        &jobs,
        o.threads,
        interrupt,
        |job| simulate_job(job, cache.as_ref(), o.timeout),
        |_, job, outcome| {
            // Stream: each line is flushed so a consumer (or a crash
            // post-mortem) sees every completed job immediately.
            let line = render_result(job, outcome);
            if writeln!(out, "{line}").and_then(|_| out.flush()).is_err() {
                // stdout is gone (broken pipe); nothing left to serve.
                exit(EXIT_INTERNAL);
            }
            if let JobOutcome::Failed { error, .. } = outcome {
                eprintln!(
                    "serve: job {} failed ({}): {}",
                    job.id,
                    error.kind(),
                    error.message()
                );
            }
        },
    );

    if let Some(c) = &cache {
        c.flush();
        if o.cache_stats {
            eprintln!("serve: cache {}", c.stats.summary());
        }
    }
    eprintln!(
        "serve: {} ok, {} failed, {} cancelled in {:.1}s",
        summary.ok,
        summary.failed,
        summary.cancelled,
        started.elapsed().as_secs_f64()
    );
    if summary.interrupted() {
        exit(EXIT_SIGINT);
    }
    if summary.failed > 0 {
        exit(EXIT_JOBS_FAILED);
    }
}
