//! `scd` — the command-line front end of the Short-Circuit Dispatch
//! reproduction.
//!
//! ```text
//! scd run <script.luma> [--vm lvm|svm] [--scheme baseline|threaded|scd]
//!         [--config a5|rocket|a8] [--vbbi|--ittage] [--arg NAME=VALUE]...
//!         [--trace out.jsonl]
//! scd disasm <script.luma> [--vm lvm|svm]
//! scd listing [--scheme baseline|threaded|scd]     # guest interpreter asm
//! scd bench list                                    # benchmark corpus
//! scd model [--config a5|rocket|a8]                 # Table V area/power
//! ```

use scd_guest::{run_source_with, GuestOptions, Scheme, Vm};
use scd_sim::{JsonlSink, SimConfig};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  scd run <script.luma> [--vm lvm|svm] [--scheme baseline|threaded|scd]\n\
         \x20         [--config a5|rocket|a8] [--vbbi|--ittage] [--arg NAME=VALUE]...\n\
         \x20         [--trace out.jsonl]\n\
         \x20 scd disasm <script.luma> [--vm lvm|svm]\n\
         \x20 scd listing [--scheme baseline|threaded|scd] [--vm lvm|svm]\n\
         \x20 scd bench list\n\
         \x20 scd model [--config a5|rocket|a8]"
    );
    exit(2);
}

struct Opts {
    path: Option<String>,
    vm: Vm,
    scheme: Scheme,
    cfg: SimConfig,
    args: Vec<(String, f64)>,
    trace: Option<String>,
}

fn parse_opts(mut argv: impl Iterator<Item = String>) -> Opts {
    let mut o = Opts {
        path: None,
        vm: Vm::Lvm,
        scheme: Scheme::Scd,
        cfg: SimConfig::embedded_a5(),
        args: Vec::new(),
        trace: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--vm" => {
                o.vm = match argv.next().as_deref() {
                    Some("lvm") => Vm::Lvm,
                    Some("svm") => Vm::Svm,
                    _ => usage(),
                }
            }
            "--scheme" => {
                o.scheme = match argv.next().as_deref() {
                    Some("baseline") => Scheme::Baseline,
                    Some("threaded") => Scheme::Threaded,
                    Some("scd") => Scheme::Scd,
                    _ => usage(),
                }
            }
            "--config" => {
                o.cfg = match argv.next().as_deref() {
                    Some("a5") => SimConfig::embedded_a5(),
                    Some("rocket") => SimConfig::fpga_rocket(),
                    Some("a8") => SimConfig::highend_a8(),
                    _ => usage(),
                }
            }
            "--vbbi" => o.cfg = o.cfg.clone().with_vbbi(),
            "--ittage" => o.cfg = o.cfg.clone().with_ittage(),
            "--trace" => o.trace = Some(argv.next().unwrap_or_else(|| usage())),
            "--arg" => {
                let kv = argv.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let v: f64 = v.parse().unwrap_or_else(|_| usage());
                o.args.push((k.to_string(), v));
            }
            _ if o.path.is_none() && !a.starts_with('-') => o.path = Some(a),
            _ => usage(),
        }
    }
    o
}

fn read_script(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    })
}

fn cmd_run(o: Opts) {
    let path = o.path.clone().unwrap_or_else(|| usage());
    let src = read_script(&path);
    let args: Vec<(&str, f64)> = o.args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let trace = o.trace.clone();
    let result = run_source_with(
        o.cfg.clone(),
        o.vm,
        &src,
        &args,
        o.scheme,
        GuestOptions::default(),
        u64::MAX,
        |m| {
            if let Some(path) = &trace {
                let sink = JsonlSink::create(std::path::Path::new(path)).unwrap_or_else(|e| {
                    eprintln!("cannot create trace file {path}: {e}");
                    exit(1);
                });
                m.set_trace_sink(Box::new(sink));
            }
        },
    );
    match result {
        Ok(run) => {
            println!("config        : {}", o.cfg.name);
            println!("vm / scheme   : {} / {}", o.vm.name(), o.scheme.name());
            println!("checksum      : {:#018x} (oracle-validated)", run.checksum);
            println!("bytecodes     : {}", run.dispatches);
            println!("instructions  : {}", run.stats.instructions);
            println!("cycles        : {}", run.stats.cycles);
            println!("IPC           : {:.3}", run.stats.ipc());
            println!("branch MPKI   : {:.2}", run.stats.branch_mpki());
            if o.scheme == Scheme::Scd {
                println!(
                    "bop hit rate  : {:.1}%",
                    100.0 * run.stats.bop_hits as f64 / run.stats.bop_executed.max(1) as f64
                );
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}

fn cmd_disasm(o: Opts) {
    let path = o.path.clone().unwrap_or_else(|| usage());
    let src = read_script(&path);
    let script = match luma::parser::parse(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            exit(1);
        }
    };
    let args: Vec<(&str, f64)> = o.args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    match o.vm {
        Vm::Lvm => match luma::lvm::compile_lvm(&script, &args) {
            Ok((p, _)) => print!("{}", luma::lvm::listing(&p)),
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        },
        Vm::Svm => match luma::svm::compile_svm(&script, &args) {
            Ok((p, _)) => print!("{}", luma::svm::listing(&p)),
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        },
    }
}

fn cmd_listing(o: Opts) {
    // Assemble the guest interpreter for a trivial image and print it.
    let script = luma::parser::parse("emit(1);").expect("trivial script");
    match o.vm {
        Vm::Lvm => {
            let (p, init) = luma::lvm::compile_lvm(&script, &[]).expect("compiles");
            let img = scd_guest::build_lvm_image(&p, &init);
            let g = scd_guest::build_lvm_guest(&img, o.scheme, GuestOptions::default());
            print!("{}", g.program.listing());
        }
        Vm::Svm => {
            let (p, init) = luma::svm::compile_svm(&script, &[]).expect("compiles");
            let img = scd_guest::build_svm_image(&p, &init);
            let g = scd_guest::build_svm_guest(&img, o.scheme, GuestOptions::default());
            print!("{}", g.program.listing());
        }
    }
}

fn cmd_bench_list() {
    println!("{:<18} {:>8} {:>9} {:>7}  description", "name", "sim-N", "fpga-N", "tiny-N");
    for b in &luma::scripts::BENCHMARKS {
        println!(
            "{:<18} {:>8} {:>9} {:>7}  {}",
            b.name, b.sim_arg, b.fpga_arg, b.tiny_arg, b.description
        );
    }
}

fn cmd_model(o: Opts) {
    let t = scd_model::table_v(&o.cfg);
    print!("{}", t.baseline.render(Some(&t.scd)));
    println!("\narea increase : {:+.2}%", 100.0 * t.area_increase);
    println!("power increase: {:+.2}%", 100.0 * t.power_increase);
}

fn main() {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("run") => cmd_run(parse_opts(argv)),
        Some("disasm") => cmd_disasm(parse_opts(argv)),
        Some("listing") => cmd_listing(parse_opts(argv)),
        Some("bench") => match argv.next().as_deref() {
            Some("list") => cmd_bench_list(),
            _ => usage(),
        },
        Some("model") => cmd_model(parse_opts(argv)),
        _ => usage(),
    }
}
