//! `scd` — the command-line front end of the Short-Circuit Dispatch
//! reproduction.
//!
//! ```text
//! scd run <script.luma> [--vm lvm|svm] [--scheme baseline|threaded|scd]
//!         [--config a5|rocket|a8] [--vbbi|--ittage] [--arg NAME=VALUE]...
//!         [--trace out.jsonl] [--fault-plan NAME[@SEED]]
//!         [--cycle-budget N] [--wall-budget SECS] [--interleaved]
//!         [--checkpoint-every N] [--checkpoint-file F] [--resume F]
//!         [--sample default | PERIOD:WARMUP[/BTB=N,PRED=N]:MEASURE]
//! scd disasm <script.luma> [--vm lvm|svm]
//! scd listing [--scheme baseline|threaded|scd]     # guest interpreter asm
//! scd bench list                                    # benchmark corpus
//! scd model [--config a5|rocket|a8]                 # Table V area/power
//! scd serve --jobs batch.jsonl [--cache DIR] [--cache-stats] [--threads N]
//!           [--timeout SECS]
//! ```
//!
//! Exit codes: 0 success, 2 usage, 3 guest trap / simulator fault,
//! 4 watchdog budget exhausted, 5 invariant or oracle violation,
//! 70 internal error (I/O, bad checkpoint), 130 interrupted batch
//! (`scd serve` additionally exits 1 when some jobs failed).

use scd_guest::{GuestError, GuestOptions, GuestRun, RunRequest, Scheme, Session, Vm};
use scd_sim::{FaultPlan, JsonlSink, SamplingPlan, SimConfig, SimError, Snapshot};
use std::process::exit;

mod fuzz;
mod serve;

/// The guest trapped or the simulator faulted.
const EXIT_GUEST_TRAP: i32 = 3;
/// A cycle or wall-clock watchdog budget was exhausted.
const EXIT_WATCHDOG: i32 = 4;
/// A statistics invariant or oracle check was violated.
const EXIT_INVARIANT: i32 = 5;
/// I/O failure, unreadable checkpoint, or other harness-side error.
const EXIT_INTERNAL: i32 = 70;

fn usage() -> ! {
    eprintln!(
        "usage:\n  scd run <script.luma> [--vm lvm|svm] [--scheme baseline|threaded|scd]\n\
         \x20         [--config a5|rocket|a8] [--vbbi|--ittage] [--arg NAME=VALUE]...\n\
         \x20         [--trace out.jsonl] [--fault-plan jte-corruption|btb-flush-storm|memory-system[@SEED]]\n\
         \x20         [--cycle-budget N] [--wall-budget SECS] [--interleaved]\n\
         \x20         [--checkpoint-every N] [--checkpoint-file F] [--resume F]\n\
         \x20         [--sample default | PERIOD:WARMUP[/BTB=N,PRED=N]:MEASURE]\n\
         \x20 scd disasm <script.luma> [--vm lvm|svm]\n\
         \x20 scd listing [--scheme baseline|threaded|scd] [--vm lvm|svm]\n\
         \x20 scd bench list\n\
         \x20 scd model [--config a5|rocket|a8]\n\
         \x20 scd fuzz [--seed N] [--count N] [--threads N] [--max-insts N]\n\
         \x20         [--bias uniform|aliasing] [--save-failing DIR]\n\
         \x20         [--save-corpus DIR] [--repro FILE]\n\
         \x20 scd serve --jobs batch.jsonl [--cache DIR] [--cache-stats] [--threads N]\n\
         \x20          [--timeout SECS]\n\
         exit codes: 0 ok, 2 usage, 3 guest trap, 4 watchdog, 5 invariant, 70 internal,\n\
         \x20            130 interrupted batch"
    );
    exit(2);
}

struct Opts {
    path: Option<String>,
    vm: Vm,
    scheme: Scheme,
    cfg: SimConfig,
    args: Vec<(String, f64)>,
    trace: Option<String>,
    fault_plan: Option<FaultPlan>,
    cycle_budget: Option<u64>,
    wall_budget: Option<f64>,
    checkpoint_every: Option<u64>,
    checkpoint_file: String,
    resume: Option<String>,
    interleaved: bool,
    sample: Option<SamplingPlan>,
}

fn parse_fault_plan(spec: &str) -> Option<FaultPlan> {
    let (name, seed) = match spec.split_once('@') {
        Some((n, s)) => (n, s.parse::<u64>().ok()?),
        None => (spec, 0xC0FFEE),
    };
    match name {
        "jte-corruption" => Some(FaultPlan::jte_corruption(seed)),
        "btb-flush-storm" => Some(FaultPlan::btb_flush_storm(seed)),
        "memory-system" => Some(FaultPlan::memory_system(seed)),
        _ => None,
    }
}

fn parse_opts(mut argv: impl Iterator<Item = String>) -> Opts {
    let mut o = Opts {
        path: None,
        vm: Vm::Lvm,
        scheme: Scheme::Scd,
        cfg: SimConfig::embedded_a5(),
        args: Vec::new(),
        trace: None,
        fault_plan: None,
        cycle_budget: None,
        wall_budget: None,
        checkpoint_every: None,
        checkpoint_file: "scd.ckpt".to_string(),
        resume: None,
        interleaved: false,
        sample: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--vm" => {
                o.vm = match argv.next().as_deref() {
                    Some("lvm") => Vm::Lvm,
                    Some("svm") => Vm::Svm,
                    _ => usage(),
                }
            }
            "--scheme" => {
                o.scheme = match argv.next().as_deref() {
                    Some("baseline") => Scheme::Baseline,
                    Some("threaded") => Scheme::Threaded,
                    Some("scd") => Scheme::Scd,
                    _ => usage(),
                }
            }
            "--config" => {
                o.cfg = match argv.next().as_deref() {
                    Some("a5") => SimConfig::embedded_a5(),
                    Some("rocket") => SimConfig::fpga_rocket(),
                    Some("a8") => SimConfig::highend_a8(),
                    _ => usage(),
                }
            }
            "--vbbi" => o.cfg = o.cfg.clone().with_vbbi(),
            "--ittage" => o.cfg = o.cfg.clone().with_ittage(),
            "--trace" => o.trace = Some(argv.next().unwrap_or_else(|| usage())),
            "--fault-plan" => {
                let spec = argv.next().unwrap_or_else(|| usage());
                o.fault_plan = Some(parse_fault_plan(&spec).unwrap_or_else(|| usage()));
            }
            "--cycle-budget" => {
                let v = argv.next().unwrap_or_else(|| usage());
                o.cycle_budget = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--wall-budget" => {
                let v = argv.next().unwrap_or_else(|| usage());
                let secs: f64 = v.parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs < 0.0 {
                    usage();
                }
                o.wall_budget = Some(secs);
            }
            "--checkpoint-every" => {
                let v = argv.next().unwrap_or_else(|| usage());
                let n: u64 = v.parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                o.checkpoint_every = Some(n);
            }
            "--checkpoint-file" => {
                o.checkpoint_file = argv.next().unwrap_or_else(|| usage());
            }
            "--resume" => o.resume = Some(argv.next().unwrap_or_else(|| usage())),
            "--interleaved" => o.interleaved = true,
            "--sample" => {
                let spec = argv.next().unwrap_or_else(|| usage());
                o.sample = Some(if spec == "default" {
                    SamplingPlan::qualified_default(false)
                } else {
                    SamplingPlan::parse(&spec).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        exit(2);
                    })
                });
            }
            "--arg" => {
                let kv = argv.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let v: f64 = v.parse().unwrap_or_else(|_| usage());
                o.args.push((k.to_string(), v));
            }
            _ if o.path.is_none() && !a.starts_with('-') => o.path = Some(a),
            _ => usage(),
        }
    }
    o
}

fn read_script(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(EXIT_INTERNAL);
    })
}

/// Why a run ended without a validated result.
enum RunFailure {
    /// The guest trapped, a budget expired, or oracle validation failed.
    Guest(GuestError),
    /// The checkpoint file could not be written.
    Io(String),
}

/// Drives the machine to completion, snapshotting every `every` guest
/// instructions. Checkpointing works by running in bounded chunks: the
/// instruction limit passed to [`scd_sim::Machine::run`] is absolute, so
/// each chunk ends in `SimError::InstLimit`, we persist a snapshot, and
/// re-enter the (restart-safe) run loop.
fn run_with_checkpoints(
    session: &mut Session,
    every: Option<u64>,
    file: &str,
) -> Result<GuestRun, RunFailure> {
    loop {
        let limit = every.map_or(u64::MAX, |n| {
            session.machine.stats.instructions.saturating_add(n)
        });
        match session.machine.run(limit) {
            Ok(exit) => return session.validate(&exit).map_err(RunFailure::Guest),
            Err(SimError::InstLimit { .. }) if every.is_some() => {
                let bytes = session.machine.snapshot().to_bytes();
                std::fs::write(file, &bytes)
                    .map_err(|e| RunFailure::Io(format!("cannot write checkpoint {file}: {e}")))?;
                eprintln!(
                    "checkpoint: {} instructions -> {file}",
                    session.machine.stats.instructions
                );
            }
            Err(e) => return Err(RunFailure::Guest(GuestError::Sim(e))),
        }
    }
}

fn print_header(o: &Opts) {
    println!("config        : {}", o.cfg.name);
    println!("vm / scheme   : {} / {}", o.vm.name(), o.scheme.name());
}

fn print_stats(o: &Opts, stats: &scd_sim::SimStats) {
    println!("instructions  : {}", stats.instructions);
    println!("cycles        : {}", stats.cycles);
    println!("IPC           : {:.3}", stats.ipc());
    println!("branch MPKI   : {:.2}", stats.branch_mpki());
    if o.scheme == Scheme::Scd {
        println!(
            "bop hit rate  : {:.1}%",
            100.0 * stats.bop_hits as f64 / stats.bop_executed.max(1) as f64
        );
    }
}

fn cmd_run(o: Opts) {
    let path = o.path.clone().unwrap_or_else(|| usage());
    if o.sample.is_some()
        && (o.trace.is_some()
            || o.fault_plan.is_some()
            || o.checkpoint_every.is_some()
            || o.resume.is_some())
    {
        // Sampled runs forbid per-retirement observers, and the mode
        // seams make mid-run checkpoints meaningless to a resumer.
        // `--interleaved` is fine: it pins the interleaved warming
        // engine, and sampled results are engine-invariant.
        eprintln!(
            "--sample is incompatible with --trace, --fault-plan, --checkpoint-every \
             and --resume"
        );
        exit(2);
    }
    let src = read_script(&path);
    let args: Vec<(&str, f64)> = o.args.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    let req = RunRequest::new(o.cfg.clone(), o.vm, &src)
        .predefined(&args)
        .scheme(o.scheme);
    let mut session = match req.session() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            exit(EXIT_GUEST_TRAP);
        }
    };
    if let Some(tp) = &o.trace {
        let sink = JsonlSink::create(std::path::Path::new(tp)).unwrap_or_else(|e| {
            eprintln!("cannot create trace file {tp}: {e}");
            exit(EXIT_INTERNAL);
        });
        session.machine.set_trace_sink(Box::new(sink));
    }
    if let Some(plan) = o.fault_plan.clone() {
        eprintln!("fault plan: {}", plan.name());
        session.machine.set_fault_plan(plan);
    }
    if o.interleaved {
        session.machine.set_replay(false);
    }
    if let Some(c) = o.cycle_budget {
        session.machine.set_cycle_budget(c);
    }
    if let Some(s) = o.wall_budget {
        session
            .machine
            .set_wall_budget(std::time::Duration::from_secs_f64(s));
    }
    if let Some(plan) = &o.sample {
        session.machine.disable_invariants();
        match session.run_sampled_and_validate(u64::MAX, plan) {
            Ok(run) => {
                let r = run.sample.as_ref().expect("sampled run carries a report");
                print_header(&o);
                println!("checksum      : {:#018x} (oracle-validated)", run.checksum);
                println!("bytecodes     : {}", run.dispatches);
                print_stats(&o, &run.stats);
                if r.exact_fallback {
                    println!("sampling      : exact fallback (guest too short for plan {plan})");
                } else {
                    println!(
                        "sampling      : {} interval(s) under plan {plan}",
                        r.intervals
                    );
                    println!(
                        "cycles (est)  : {} ± {} (95% CI)",
                        r.cycles_est, r.cycles_ci95
                    );
                    println!("CPI (est)     : {:.4} ± {:.4}", r.cpi_mean, r.cpi_ci95);
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                exit(match &e {
                    GuestError::Sim(SimError::Watchdog { .. }) => EXIT_WATCHDOG,
                    GuestError::Sim(_) => EXIT_GUEST_TRAP,
                    GuestError::ChecksumMismatch { .. } | GuestError::DispatchMismatch { .. } => {
                        EXIT_INVARIANT
                    }
                });
            }
        }
        return;
    }
    if let Some(rp) = &o.resume {
        let bytes = std::fs::read(rp).unwrap_or_else(|e| {
            eprintln!("cannot read checkpoint {rp}: {e}");
            exit(EXIT_INTERNAL);
        });
        let snap = Snapshot::from_bytes(&bytes).unwrap_or_else(|e| {
            eprintln!("bad checkpoint {rp}: {e}");
            exit(EXIT_INTERNAL);
        });
        if let Err(e) = session.machine.restore(&snap) {
            eprintln!("cannot resume from {rp}: {e}");
            exit(EXIT_INTERNAL);
        }
        eprintln!(
            "resumed {rp} at instruction {}",
            session.machine.stats.instructions
        );
    }

    // StatInvariants failures surface as panics deep in the simulator;
    // catch them so they map to a distinct exit code instead of an abort.
    let every = o.checkpoint_every;
    let file = o.checkpoint_file.clone();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_with_checkpoints(&mut session, every, &file)
    }));
    match outcome {
        Ok(Ok(run)) => {
            print_header(&o);
            println!("checksum      : {:#018x} (oracle-validated)", run.checksum);
            println!("bytecodes     : {}", run.dispatches);
            print_stats(&o, &run.stats);
            if let Some(p) = session.machine.fault_plan() {
                println!("faults        : {} injected ({})", p.injected(), p.name());
            }
        }
        Ok(Err(RunFailure::Io(msg))) => {
            eprintln!("error: {msg}");
            exit(EXIT_INTERNAL);
        }
        Ok(Err(RunFailure::Guest(e))) => {
            print_header(&o);
            print_stats(&o, &session.machine.stats);
            eprintln!("error: {e}");
            exit(match &e {
                GuestError::Sim(SimError::Watchdog { .. }) => EXIT_WATCHDOG,
                GuestError::Sim(_) => EXIT_GUEST_TRAP,
                GuestError::ChecksumMismatch { .. } | GuestError::DispatchMismatch { .. } => {
                    EXIT_INVARIANT
                }
            });
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            eprintln!("invariant violation: {msg}");
            exit(EXIT_INVARIANT);
        }
    }
}

fn cmd_disasm(o: Opts) {
    let path = o.path.clone().unwrap_or_else(|| usage());
    let src = read_script(&path);
    let script = match luma::parser::parse(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            exit(1);
        }
    };
    let args: Vec<(&str, f64)> = o.args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    match o.vm {
        Vm::Lvm => match luma::lvm::compile_lvm(&script, &args) {
            Ok((p, _)) => print!("{}", luma::lvm::listing(&p)),
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        },
        Vm::Svm => match luma::svm::compile_svm(&script, &args) {
            Ok((p, _)) => print!("{}", luma::svm::listing(&p)),
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        },
    }
}

fn cmd_listing(o: Opts) {
    // Assemble the guest interpreter for a trivial image and print it.
    let script = luma::parser::parse("emit(1);").expect("trivial script");
    match o.vm {
        Vm::Lvm => {
            let (p, init) = luma::lvm::compile_lvm(&script, &[]).expect("compiles");
            let img = scd_guest::build_lvm_image(&p, &init);
            let g = scd_guest::build_lvm_guest(&img, o.scheme, GuestOptions::default());
            print!("{}", g.program.listing());
        }
        Vm::Svm => {
            let (p, init) = luma::svm::compile_svm(&script, &[]).expect("compiles");
            let img = scd_guest::build_svm_image(&p, &init);
            let g = scd_guest::build_svm_guest(&img, o.scheme, GuestOptions::default());
            print!("{}", g.program.listing());
        }
    }
}

fn cmd_bench_list() {
    println!(
        "{:<18} {:>8} {:>9} {:>7}  description",
        "name", "sim-N", "fpga-N", "tiny-N"
    );
    for b in &luma::scripts::BENCHMARKS {
        println!(
            "{:<18} {:>8} {:>9} {:>7}  {}",
            b.name, b.sim_arg, b.fpga_arg, b.tiny_arg, b.description
        );
    }
}

fn cmd_model(o: Opts) {
    let t = scd_model::table_v(&o.cfg);
    print!("{}", t.baseline.render(Some(&t.scd)));
    println!("\narea increase : {:+.2}%", 100.0 * t.area_increase);
    println!("power increase: {:+.2}%", 100.0 * t.power_increase);
}

fn main() {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("run") => cmd_run(parse_opts(argv)),
        Some("disasm") => cmd_disasm(parse_opts(argv)),
        Some("listing") => cmd_listing(parse_opts(argv)),
        Some("bench") => match argv.next().as_deref() {
            Some("list") => cmd_bench_list(),
            _ => usage(),
        },
        Some("model") => cmd_model(parse_opts(argv)),
        Some("fuzz") => fuzz::cmd_fuzz(argv),
        Some("serve") => serve::cmd_serve(argv),
        _ => usage(),
    }
}
