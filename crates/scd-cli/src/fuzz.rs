//! `scd fuzz` — differential fuzzing of the cycle model against the
//! architectural oracle.
//!
//! Each round: generate a seeded interpreter-shaped program
//! (`scd_ref::gen`), run it on the cycle model under three SCD variants
//! (stall scheme, fall-through scheme, SCD disabled) with a
//! [`LockstepSink`] attached, and fail on the first retired instruction
//! whose architectural effects differ from the reference ISS. On failure
//! the program is shrunk (regenerated with fewer handler blocks while the
//! divergence persists) and pinned as a `scd_ref::corpus` reproducer.
//!
//! Determinism: the program for index `i` depends only on
//! `base_seed` and `i`; results are aggregated in index order, so the
//! report is byte-identical for any `--threads` value.

use crate::{usage, EXIT_INTERNAL, EXIT_INVARIANT};
use scd_ref::corpus::{self, Repro};
use scd_ref::gen::{generate, GenBias, GenConfig, Rng};
use scd_sim::{downcast_sink, LockstepSink, Machine, SimConfig, SimError};
use std::process::exit;

struct FuzzOpts {
    seed: u64,
    count: u64,
    threads: usize,
    max_insts: u64,
    bias: GenBias,
    save_failing: Option<String>,
    save_corpus: Option<String>,
    repro: Option<String>,
}

fn parse_fuzz_opts(mut argv: impl Iterator<Item = String>) -> FuzzOpts {
    let mut o = FuzzOpts {
        seed: 1,
        count: 64,
        threads: 1,
        max_insts: 2_000_000,
        bias: GenBias::Uniform,
        save_failing: None,
        save_corpus: None,
        repro: None,
    };
    let num = |s: Option<String>| s.and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(|| usage());
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--seed" => o.seed = num(argv.next()),
            "--count" => o.count = num(argv.next()),
            "--threads" => o.threads = num(argv.next()).clamp(1, 64) as usize,
            "--max-insts" => o.max_insts = num(argv.next()),
            "--bias" => {
                o.bias = match argv.next().as_deref() {
                    Some("uniform") => GenBias::Uniform,
                    Some("aliasing") => GenBias::Aliasing,
                    _ => usage(),
                }
            }
            "--save-failing" => o.save_failing = Some(argv.next().unwrap_or_else(|| usage())),
            "--save-corpus" => o.save_corpus = Some(argv.next().unwrap_or_else(|| usage())),
            "--repro" => o.repro = Some(argv.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    o
}

/// The three SCD configurations every program runs under: the paper's
/// stall scheme, its fall-through scheme, and SCD off entirely.
const VARIANTS: [&str; 3] = ["scd-stall", "scd-fallthrough", "scd-off"];

fn variant_config(name: &str) -> SimConfig {
    let mut cfg = SimConfig::embedded_a5();
    match name {
        "scd-stall" => {}
        "scd-fallthrough" => cfg.scd.stall_on_unready = false,
        "scd-off" => cfg.scd.enabled = false,
        other => unreachable!("unknown variant {other}"),
    }
    cfg
}

/// One lockstep run of a pinned program. `Ok(checked)` counts compared
/// instructions; `Err` is a divergence or an unexpected simulator error.
fn run_one(repro: &Repro, variant: &str, max_insts: u64) -> Result<u64, String> {
    let cfg = variant_config(variant);
    let mut m = Machine::new(cfg, &repro.program);
    m.map("fuzzdata", repro.data_base, repro.data_size);
    m.set_trace_sink(Box::new(LockstepSink::new(&m)));
    let run_err = match m.run(max_insts) {
        Ok(_) => None,
        // Budget exhaustion is a pass: everything retired so far was
        // compared, and generated programs are only *expected* — not
        // guaranteed — to exit within the budget.
        Err(SimError::InstLimit { .. }) => None,
        Err(e) => Some(e.to_string()),
    };
    let sink = m
        .take_trace_sink()
        .and_then(downcast_sink::<LockstepSink>)
        .ok_or("lockstep sink went missing")?;
    if let Some(d) = sink.divergence() {
        return Err(d.to_string());
    }
    if let Some(e) = run_err {
        return Err(format!("simulator error without divergence: {e}"));
    }
    Ok(sink.checked())
}

/// Derives the generator seed for program index `i` — a splitmix stream
/// per index so neighbouring indices share no structure.
fn seed_for(base: u64, i: u64) -> u64 {
    Rng::new(base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next()
}

/// The shape constructor for the selected bias.
fn config_for(bias: GenBias, seed: u64) -> GenConfig {
    match bias {
        GenBias::Uniform => GenConfig::from_seed(seed),
        GenBias::Aliasing => GenConfig::aliasing_from_seed(seed),
    }
}

fn repro_for(cfg: &GenConfig) -> Repro {
    let g = generate(cfg);
    Repro { seed: cfg.seed, program: g.program, data_base: g.data_base, data_size: g.data_size }
}

/// Shrinks a failing config: repeatedly halve, then decrement, the
/// handler-block count while the failure (any divergence, same variant)
/// persists. Returns the smallest still-failing config.
fn shrink(cfg: GenConfig, variant: &str, max_insts: u64) -> GenConfig {
    let still_fails =
        |c: &GenConfig| run_one(&repro_for(c), variant, max_insts).is_err();
    let mut best = cfg;
    loop {
        let mut reduced = false;
        let mut candidates = Vec::new();
        if best.blocks > 1 {
            candidates.push(GenConfig { blocks: best.blocks / 2, ..best });
            candidates.push(GenConfig { blocks: best.blocks - 1, ..best });
        }
        if best.outer_iters > 1 {
            candidates.push(GenConfig { outer_iters: 1, ..best });
        }
        for c in candidates {
            if still_fails(&c) {
                best = c;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return best;
        }
    }
}

struct Failure {
    index: u64,
    seed: u64,
    variant: &'static str,
    detail: String,
    repro_path: Option<String>,
}

/// One per-index fuzz outcome: instructions checked, or the first
/// failing variant and its divergence detail.
type IndexResult = Result<u64, (&'static str, String)>;

/// Fuzzes indices `0..count`, each under all three variants. Returns
/// per-index results in index order regardless of thread count.
fn fuzz_all(o: &FuzzOpts) -> (u64, Vec<Failure>) {
    let indices: Vec<u64> = (0..o.count).collect();
    let results: Vec<(u64, IndexResult)> = if o.threads <= 1 {
        indices.iter().map(|&i| (i, fuzz_index(o, i))).collect()
    } else {
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..o.threads {
                let chunk: Vec<u64> =
                    indices.iter().copied().filter(|i| (*i as usize) % o.threads == t).collect();
                handles.push(s.spawn(move || {
                    chunk.into_iter().map(|i| (i, fuzz_index(o, i))).collect::<Vec<_>>()
                }));
            }
            let mut all: Vec<_> =
                handles.into_iter().flat_map(|h| h.join().expect("fuzz worker panicked")).collect();
            all.sort_by_key(|(i, _)| *i);
            all
        })
    };

    let mut checked = 0u64;
    let mut failures = Vec::new();
    for (i, r) in results {
        match r {
            Ok(c) => checked += c,
            Err((variant, detail)) => {
                let seed = seed_for(o.seed, i);
                // Shrink and pin the reproducer (serial: failures are rare
                // and the corpus write must be race-free).
                let small = shrink(config_for(o.bias, seed), variant, o.max_insts);
                let repro = repro_for(&small);
                let repro_path = o.save_failing.as_ref().and_then(|dir| {
                    let path = format!("{dir}/fuzz-{i}-{variant}.repro");
                    std::fs::create_dir_all(dir).ok()?;
                    std::fs::write(&path, corpus::save(&repro)).ok()?;
                    Some(path)
                });
                failures.push(Failure { index: i, seed, variant, detail, repro_path });
            }
        }
    }
    (checked, failures)
}

/// All three variants for one index; first failing variant wins.
fn fuzz_index(o: &FuzzOpts, i: u64) -> IndexResult {
    let seed = seed_for(o.seed, i);
    let repro = repro_for(&config_for(o.bias, seed));
    let mut checked = 0u64;
    for variant in VARIANTS {
        match run_one(&repro, variant, o.max_insts) {
            Ok(c) => checked += c,
            Err(detail) => return Err((variant, detail)),
        }
    }
    Ok(checked)
}

fn cmd_repro(path: &str, max_insts: u64) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(EXIT_INTERNAL);
    });
    let repro = corpus::load(&text).unwrap_or_else(|e| {
        eprintln!("bad reproducer {path}: {e}");
        exit(EXIT_INTERNAL);
    });
    let mut failed = false;
    for variant in VARIANTS {
        match run_one(&repro, variant, max_insts) {
            Ok(c) => println!("repro {path} [{variant}]: ok, {c} instructions lockstep-checked"),
            Err(d) => {
                println!("repro {path} [{variant}]: DIVERGENCE: {d}");
                failed = true;
            }
        }
    }
    exit(if failed { EXIT_INVARIANT } else { 0 });
}

/// Entry point for `scd fuzz`.
pub fn cmd_fuzz(argv: impl Iterator<Item = String>) {
    let o = parse_fuzz_opts(argv);
    if let Some(path) = &o.repro {
        cmd_repro(path, o.max_insts);
    }
    if let Some(dir) = &o.save_corpus {
        // Pin every generated program as a reproducer (used to refresh
        // `tests/golden/lockstep/`); the fuzz run below still executes.
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            exit(EXIT_INTERNAL);
        }
        let prefix = if o.bias == GenBias::Aliasing { "alias" } else { "seed" };
        for i in 0..o.count {
            let seed = seed_for(o.seed, i);
            let repro = repro_for(&config_for(o.bias, seed));
            let path = format!("{dir}/{prefix}{}-{i}.repro", o.seed);
            if let Err(e) = std::fs::write(&path, corpus::save(&repro)) {
                eprintln!("cannot write {path}: {e}");
                exit(EXIT_INTERNAL);
            }
        }
    }
    let (checked, failures) = fuzz_all(&o);
    println!(
        "fuzz{}: {} programs x {} variants, {} instructions lockstep-checked, {} failure{} (seed {})",
        if o.bias == GenBias::Aliasing { " [aliasing bias]" } else { "" },
        o.count,
        VARIANTS.len(),
        checked,
        failures.len(),
        if failures.len() == 1 { "" } else { "s" },
        o.seed,
    );
    for f in &failures {
        println!("  program {} (seed {:#x}) [{}]: {}", f.index, f.seed, f.variant, f.detail);
        if let Some(p) = &f.repro_path {
            println!("    reproducer: {p}");
        }
    }
    if !failures.is_empty() {
        exit(EXIT_INVARIANT);
    }
}
