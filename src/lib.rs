//! # scd — Short-Circuit Dispatch reproduction (facade crate)
//!
//! Re-exports the whole stack of the ISCA 2016 "Short-Circuit Dispatch"
//! reproduction. See the [README](https://example.org/scd) and the
//! individual crates:
//!
//! * [`scd_isa`] — the RV64-subset ISA with the SCD extension.
//! * [`scd_sim`] — the embedded in-order core simulator.
//! * [`luma`] — the scripting language and its two VM targets.
//! * [`scd_guest`] — the interpreters that run on the simulated core.
//! * [`scd_model`] — the analytical area/power/EDP model.
//!
//! ```
//! use scd::scd_guest::{run_source, GuestOptions, Scheme, Vm};
//! use scd::scd_sim::SimConfig;
//!
//! # fn main() -> Result<(), String> {
//! let run = run_source(
//!     SimConfig::embedded_a5(),
//!     Vm::Lvm,
//!     "var s = 0; for i = 1, N { s = s + i; } emit(s);",
//!     &[("N", 64.0)],
//!     Scheme::Scd,
//!     GuestOptions::default(),
//!     1_000_000,
//! )?;
//! assert!(run.stats.bop_hits > 0);
//! # Ok(())
//! # }
//! ```

pub use luma;
pub use scd_guest;
pub use scd_isa;
pub use scd_model;
pub use scd_sim;
