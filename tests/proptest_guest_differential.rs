//! The strongest correctness property in the repository: *randomly
//! generated programs* run on the simulated guest interpreter (SCD
//! build) must agree bit-for-bit with the host oracle — `run_source`
//! validates checksum and dispatch count on every case.
//!
//! Case counts are kept modest because each case assembles an
//! interpreter and simulates tens of thousands of instructions.

use proptest::prelude::*;
use scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd_sim::SimConfig;

/// A small random program: a handful of globals, a loop, an array pass,
/// and a function call, parameterized by random constants.
fn arb_program() -> impl Strategy<Value = String> {
    (
        1i32..20,   // loop bound
        -50i32..50, // seed a
        -50i32..50, // seed b
        1i32..8,    // array length
        prop::sample::select(vec!["+", "-", "*"]),
        prop::sample::select(vec!["<", "<=", ">", ">=", "==", "!="]),
    )
        .prop_map(|(n, a, b, len, op, cmp)| {
            format!(
                "
                fn mix(x, y) {{
                    if x {cmp} y {{ return x {op} y; }}
                    return y {op} x {op} 1;
                }}
                var acc = {a};
                var arr = array({len});
                for i = 0, {len} - 1 {{ arr[i] = mix(i, {b}); }}
                for i = 1, {n} {{
                    acc = acc + mix(acc % 97, arr[i % {len}]);
                    if acc > 100000 {{ acc = acc / 1000; }}
                    if acc < -100000 {{ acc = 0 - acc / 1000; }}
                }}
                var s = 0;
                for i = 0, {len} - 1 {{ s = s + arr[i]; }}
                emit(acc);
                emit(s);
                "
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_programs_agree_with_oracle_on_lvm_scd(src in arb_program()) {
        run_source(
            SimConfig::embedded_a5(),
            Vm::Lvm,
            &src,
            &[],
            Scheme::Scd,
            GuestOptions::default(),
            200_000_000,
        )
        .map_err(|e| TestCaseError::fail(format!("{e}\nsource:\n{src}")))?;
    }

    #[test]
    fn random_programs_agree_with_oracle_on_svm_scd(src in arb_program()) {
        run_source(
            SimConfig::embedded_a5(),
            Vm::Svm,
            &src,
            &[],
            Scheme::Scd,
            GuestOptions::default(),
            200_000_000,
        )
        .map_err(|e| TestCaseError::fail(format!("{e}\nsource:\n{src}")))?;
    }

    #[test]
    fn random_programs_agree_on_threaded_build(src in arb_program()) {
        run_source(
            SimConfig::fpga_rocket(),
            Vm::Lvm,
            &src,
            &[],
            Scheme::Threaded,
            GuestOptions::default(),
            200_000_000,
        )
        .map_err(|e| TestCaseError::fail(format!("{e}\nsource:\n{src}")))?;
    }
}

// ---------------------------------------------------------------------------
// Robustness: hostile inputs must produce typed errors, never panics.
// ---------------------------------------------------------------------------

use luma::svm::{FuncInfo, SvmInterp, SvmProgram};

/// Constants a hostile bytecode image could carry: bounded numbers (so a
/// decoded `array(n)` length stays allocatable), booleans, nil, and
/// forged array references pointing at handles that were never created.
fn arb_soup_const() -> impl Strategy<Value = u64> {
    prop_oneof![
        (-100_000i32..100_000).prop_map(|i| luma::value::num(i as f64 / 100.0)),
        any::<bool>().prop_map(luma::value::boolean),
        Just(luma::value::NIL),
        (0u64..64).prop_map(luma::value::array_ref),
    ]
}

/// An arbitrary SVM image: random code bytes with a curated constant
/// pool, as an attacker holding the loader (but not the host) would
/// deliver it.
fn arb_svm_soup() -> impl Strategy<Value = (SvmProgram, Vec<u64>)> {
    (
        prop::collection::vec(any::<u8>(), 0..256),
        prop::collection::vec(arb_soup_const(), 0..8),
        prop::collection::vec(arb_soup_const(), 0..4),
        0u32..8,
    )
        .prop_map(|(code, consts, ginit, nlocals)| {
            let p = SvmProgram {
                code,
                consts,
                funcs: vec![FuncInfo { code_off: 0, nparams: 0, nlocals }],
                nglobals: ginit.len() as u32,
                global_names: Vec::new(),
            };
            (p, ginit)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn isa_decode_never_panics(w in any::<u32>()) {
        if let Ok(inst) = scd_isa::decode(w) {
            // Anything that decodes must survive a codec round trip.
            let re = scd_isa::encode(inst)
                .map_err(|e| TestCaseError::fail(format!("{inst:?} failed to re-encode: {e}")))?;
            prop_assert_eq!(scd_isa::decode(re).expect("re-encoded word decodes"), inst);
        }
    }

    #[test]
    fn svm_loader_never_panics_on_byte_soup(soup in arb_svm_soup()) {
        // Byte soup may trap (typed RuntimeError) or halt cleanly; either
        // way the host interpreter must not panic or abort.
        let (p, ginit) = soup;
        let _ = SvmInterp::new(&p, &ginit).run(512);
    }
}
