//! The strongest correctness property in the repository: *randomly
//! generated programs* run on the simulated guest interpreter (SCD
//! build) must agree bit-for-bit with the host oracle — `run_source`
//! validates checksum and dispatch count on every case.
//!
//! Case counts are kept modest because each case assembles an
//! interpreter and simulates tens of thousands of instructions.

use proptest::prelude::*;
use scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd_sim::SimConfig;

/// A small random program: a handful of globals, a loop, an array pass,
/// and a function call, parameterized by random constants.
fn arb_program() -> impl Strategy<Value = String> {
    (
        1i32..20,          // loop bound
        -50i32..50,        // seed a
        -50i32..50,        // seed b
        1i32..8,           // array length
        prop::sample::select(vec!["+", "-", "*"]),
        prop::sample::select(vec!["<", "<=", ">", ">=", "==", "!="]),
    )
        .prop_map(|(n, a, b, len, op, cmp)| {
            format!(
                "
                fn mix(x, y) {{
                    if x {cmp} y {{ return x {op} y; }}
                    return y {op} x {op} 1;
                }}
                var acc = {a};
                var arr = array({len});
                for i = 0, {len} - 1 {{ arr[i] = mix(i, {b}); }}
                for i = 1, {n} {{
                    acc = acc + mix(acc % 97, arr[i % {len}]);
                    if acc > 100000 {{ acc = acc / 1000; }}
                    if acc < -100000 {{ acc = 0 - acc / 1000; }}
                }}
                var s = 0;
                for i = 0, {len} - 1 {{ s = s + arr[i]; }}
                emit(acc);
                emit(s);
                "
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_programs_agree_with_oracle_on_lvm_scd(src in arb_program()) {
        run_source(
            SimConfig::embedded_a5(),
            Vm::Lvm,
            &src,
            &[],
            Scheme::Scd,
            GuestOptions::default(),
            200_000_000,
        )
        .map_err(|e| TestCaseError::fail(format!("{e}\nsource:\n{src}")))?;
    }

    #[test]
    fn random_programs_agree_with_oracle_on_svm_scd(src in arb_program()) {
        run_source(
            SimConfig::embedded_a5(),
            Vm::Svm,
            &src,
            &[],
            Scheme::Scd,
            GuestOptions::default(),
            200_000_000,
        )
        .map_err(|e| TestCaseError::fail(format!("{e}\nsource:\n{src}")))?;
    }

    #[test]
    fn random_programs_agree_on_threaded_build(src in arb_program()) {
        run_source(
            SimConfig::fpga_rocket(),
            Vm::Lvm,
            &src,
            &[],
            Scheme::Threaded,
            GuestOptions::default(),
            200_000_000,
        )
        .map_err(|e| TestCaseError::fail(format!("{e}\nsource:\n{src}")))?;
    }
}
