//! Architectural semantics of the SCD extension (Table I), exercised
//! end-to-end on the simulated machine, plus the hardware knobs of
//! Section IV: stall vs fall-through scheme, JTE flushing on context
//! switches, multiple branch IDs, and SCD binaries on non-SCD cores.

use scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd_isa::{Asm, Inst, LoadOp, Reg};
use scd_sim::{Machine, SimConfig, SimError};

const LOOPY: &str = "var s = 0; for i = 1, 300 { s = s + i * 2 - 1; } emit(s);";

fn run_loopy(cfg: SimConfig) -> scd_guest::GuestRun {
    run_source(cfg, Vm::Lvm, LOOPY, &[], Scheme::Scd, GuestOptions::default(), u64::MAX)
        .expect("loop program runs")
}

#[test]
fn scd_binary_runs_on_non_scd_core() {
    // With the extension disabled, bop always falls through and jru acts
    // as a plain jump: the program must still be correct, just slower.
    let with = run_loopy(SimConfig::embedded_a5());
    let without = run_loopy(SimConfig::embedded_a5().without_scd());
    assert_eq!(with.checksum, without.checksum);
    assert_eq!(without.stats.bop_hits, 0);
    assert!(with.stats.bop_hits > 0);
    assert!(without.stats.cycles > with.stats.cycles);
}

#[test]
fn fall_through_scheme_trades_hits_for_stalls() {
    // Paper Section III-B: the stall scheme waits for Rop; the
    // fall-through scheme never stalls but misses fast-path chances
    // whenever Rop is not ready at fetch.
    let mut cfg = SimConfig::embedded_a5();
    cfg.scd.stall_on_unready = false;
    let fall = run_loopy(cfg);
    let stall = run_loopy(SimConfig::embedded_a5());
    assert_eq!(fall.checksum, stall.checksum);
    assert_eq!(fall.stats.bop_stall_cycles, 0);
    assert!(stall.stats.bop_stall_cycles > 0);
    // With our dispatch spacing, Rop is never ready by bop's fetch, so
    // the fall-through scheme cannot short-circuit at all — exactly why
    // the paper adopts stalling on shallow pipelines.
    assert!(fall.stats.bop_hits < stall.stats.bop_hits);
    assert!(stall.stats.cycles < fall.stats.cycles);
}

#[test]
fn scheduled_fetch_removes_stalls() {
    // The ablation knob: scheduling independent work between the .op
    // load and bop hides the Rop latency.
    let opts = GuestOptions { production_weight: true, scheduled_fetch: true };
    let sched = run_source(
        SimConfig::embedded_a5(),
        Vm::Lvm,
        LOOPY,
        &[],
        Scheme::Scd,
        opts,
        u64::MAX,
    )
    .expect("runs");
    let plain = run_loopy(SimConfig::embedded_a5());
    assert_eq!(sched.checksum, plain.checksum);
    assert!(sched.stats.bop_stall_cycles < plain.stats.bop_stall_cycles);
    assert!(sched.stats.cycles < plain.stats.cycles);
}

#[test]
fn context_switch_flushing_costs_performance_but_not_correctness() {
    // Section IV: on a context switch the OS executes jte.flush; JTEs
    // must be repopulated through the slow path.
    let mut cfg = SimConfig::embedded_a5();
    cfg.scd.flush_interval = Some(2_000);
    let flushed = run_loopy(cfg);
    let clean = run_loopy(SimConfig::embedded_a5());
    assert_eq!(flushed.checksum, clean.checksum);
    assert!(flushed.stats.btb.jte_flushes > clean.stats.btb.jte_flushes);
    assert!(flushed.stats.btb.jte_inserts > clean.stats.btb.jte_inserts);
    assert!(flushed.stats.cycles >= clean.stats.cycles);
}

#[test]
fn multiple_branch_ids_are_independent() {
    // Section IV "supporting multiple jump tables": two interleaved
    // dispatchers with different branch IDs must not clobber each
    // other's Rop/Rmask or JTEs.
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::S1, 0x10_0000); // table 0 bytecode stream
    a.li(Reg::S2, 0x10_1000); // table 1 bytecode stream
    // masks: table 0 uses 6 bits, table 1 uses 8 bits
    a.li(Reg::T0, 0x3F);
    a.setmask(0, Reg::T0);
    a.li(Reg::T0, 0xFF);
    a.setmask(1, Reg::T0);
    a.li(Reg::A2, 0); // counter
    a.li(Reg::A3, 40); // iterations

    a.label("loop");
    // dispatcher 0: opcode 1 -> h0a
    a.load_op(LoadOp::Lwu, 0, Reg::A0, 0, Reg::S1);
    a.bop(0);
    a.la(Reg::T1, "h0a");
    a.jru(0, Reg::T1);
    a.label("h0a");
    a.addi(Reg::A2, Reg::A2, 1);
    // dispatcher 1: opcode 2 -> h1a
    a.load_op(LoadOp::Lwu, 1, Reg::A0, 0, Reg::S2);
    a.bop(1);
    a.la(Reg::T1, "h1a");
    a.jru(1, Reg::T1);
    a.label("h1a");
    a.addi(Reg::A2, Reg::A2, 2);
    a.addi(Reg::A3, Reg::A3, -1);
    a.bnez(Reg::A3, "loop");

    a.mv(Reg::A0, Reg::A2);
    a.li(Reg::A7, 0);
    a.ecall();

    let p = a.finish().expect("assembles");
    let mut m = Machine::new(SimConfig::embedded_a5(), &p);
    m.map("data", 0x10_0000, 0x2000);
    m.mem.write_u32(0x10_0000, 1).expect("mapped");
    m.mem.write_u32(0x10_1000, 2).expect("mapped");
    let exit = m.run(100_000).expect("runs");
    assert_eq!(exit.code, 40 * 3);
    // Both dispatchers short-circuit after their first pass.
    assert_eq!(m.stats.bop_executed, 80);
    assert_eq!(m.stats.bop_hits, 78);
    assert_eq!(m.stats.btb.jte_inserts, 2);
}

#[test]
fn jte_flush_instruction_invalidates_only_jtes() {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::S1, 0x10_0000);
    a.li(Reg::T0, 0x3F);
    a.setmask(0, Reg::T0);
    // Insert a JTE for opcode 1.
    a.load_op(LoadOp::Lwu, 0, Reg::A0, 0, Reg::S1);
    a.la(Reg::T1, "h");
    a.jru(0, Reg::T1);
    a.label("h");
    // Flush, then dispatch again: bop must miss (slow path again).
    a.inst(Inst::JteFlush);
    a.load_op(LoadOp::Lwu, 0, Reg::A0, 0, Reg::S1);
    a.bop(0);
    a.la(Reg::T1, "h2");
    a.jru(0, Reg::T1);
    a.label("h2");
    // And once more without flushing: now it must hit.
    a.load_op(LoadOp::Lwu, 0, Reg::A0, 0, Reg::S1);
    a.bop(0);
    a.inst(Inst::Ebreak); // unreachable if bop hits
    a.label("h3");
    a.li(Reg::A0, 0);
    a.li(Reg::A7, 0);
    a.ecall();

    // Patch: the second jru inserts h2's address as the target for
    // opcode 1; the third bop must jump there -- but we want to land at
    // h3. Use a single handler instead.
    let p = a.finish().expect("assembles");
    let mut m = Machine::new(SimConfig::embedded_a5(), &p);
    m.map("data", 0x10_0000, 0x1000);
    m.mem.write_u32(0x10_0000, 1).expect("mapped");
    // The bop after the flush must miss; the final bop hits and jumps to
    // the target cached by the *second* jru, which is h2 -- an infinite
    // revisit would exceed the instruction budget, and landing anywhere
    // with a hit proves the JTE was repopulated. We simply check the
    // counters after the run errors or exits.
    let _ = m.run(10_000);
    assert_eq!(m.stats.btb.jte_flushes, 1);
    assert_eq!(m.stats.btb.jte_inserts, 2);
    assert!(m.stats.bop_hits >= 1);
}

#[test]
fn dual_issue_core_is_faster_and_correct() {
    let single = run_loopy(SimConfig::embedded_a5());
    let dual = run_loopy(SimConfig::highend_a8());
    assert_eq!(single.checksum, dual.checksum);
    assert_eq!(single.stats.instructions, dual.stats.instructions);
    assert!(
        dual.stats.cycles < single.stats.cycles,
        "dual-issue should be faster: {} vs {}",
        dual.stats.cycles,
        single.stats.cycles
    );
    assert!(dual.stats.ipc() > single.stats.ipc());
}

#[test]
fn vbbi_predicts_dispatch_jumps() {
    let base = run_source(
        SimConfig::embedded_a5(),
        Vm::Lvm,
        LOOPY,
        &[],
        Scheme::Baseline,
        GuestOptions::default(),
        u64::MAX,
    )
    .expect("runs");
    let vbbi = run_source(
        SimConfig::embedded_a5().with_vbbi(),
        Vm::Lvm,
        LOOPY,
        &[],
        Scheme::Baseline,
        GuestOptions::default(),
        u64::MAX,
    )
    .expect("runs");
    assert_eq!(base.checksum, vbbi.checksum);
    assert_eq!(base.stats.instructions, vbbi.stats.instructions);
    // VBBI slashes dispatch-jump mispredictions without touching the
    // instruction count (the paper's <0.1% misprediction claim).
    let base_mr = base.stats.indirect_dispatch.mispredicted as f64
        / base.stats.indirect_dispatch.executed as f64;
    let vbbi_mr = vbbi.stats.indirect_dispatch.mispredicted as f64
        / vbbi.stats.indirect_dispatch.executed as f64;
    assert!(vbbi_mr < 0.05, "VBBI dispatch misprediction rate {vbbi_mr}");
    assert!(vbbi_mr < base_mr / 4.0);
    assert!(vbbi.stats.cycles < base.stats.cycles);
}

#[test]
fn instruction_budget_is_enforced() {
    let r = run_source(
        SimConfig::embedded_a5(),
        Vm::Lvm,
        "var i = 0; while true { i = i + 1; }",
        &[],
        Scheme::Scd,
        GuestOptions::default(),
        100_000,
    );
    match r {
        Err(msg) => assert!(msg.contains("instruction limit"), "{msg}"),
        Ok(_) => panic!("infinite loop terminated"),
    }
}

#[test]
fn guest_traps_on_type_errors() {
    // The guest must detect dynamic type errors exactly like the oracle
    // (which refuses to run the program at all, so we drive the machine
    // directly).
    let script = luma::parser::parse("var x = nil; var y = x + 1; emit(y);").expect("parses");
    let (p, init) = luma::lvm::compile_lvm(&script, &[]).expect("compiles");
    let img = scd_guest::build_lvm_image(&p, &init);
    let guest = scd_guest::build_lvm_guest(&img, Scheme::Scd, GuestOptions::default());
    let mut m = Machine::new(SimConfig::embedded_a5(), &guest.program);
    m.map("image", scd_guest::layout::IMAGE_BASE, 1 << 20);
    m.mem.write_bytes(scd_guest::layout::IMAGE_BASE, &img.bytes);
    m.map("globals", scd_guest::layout::GLOBALS_BASE, 1 << 20);
    m.map(
        "vstack+ctl",
        scd_guest::layout::VSTACK_BASE,
        scd_guest::layout::VSTACK_SIZE + scd_guest::layout::VMCTL_SIZE,
    );
    m.map("frames", scd_guest::layout::FRAME_BASE, scd_guest::layout::FRAME_SIZE);
    m.map("heap", scd_guest::layout::HEAP_BASE, scd_guest::layout::HEAP_SIZE);
    match m.run(1_000_000) {
        Err(SimError::Break { .. }) => {} // ebreak = guest trap
        other => panic!("expected a guest trap, got {other:?}"),
    }
}
