//! Refactor-equivalence golden: a pinned subset of the run matrix
//! (3 benchmarks × 2 VMs × Baseline/SCD × embedded-a5/fpga-rocket, tiny
//! inputs) must produce `SimStats`, the event-derived `CycleBreakdown`
//! and the snapshot config fingerprint **bit-identical** to the
//! committed golden file. Any change to the simulator's timing — however
//! it is reorganized internally — trips this test.
//!
//! Regenerate after an *intentional* timing change with:
//!
//! ```text
//! SCD_BLESS=1 cargo test -q --test golden_stats
//! ```

use luma::scripts::BENCHMARKS;
use scd_guest::{GuestOptions, Scheme, Session, Vm};
use scd_sim::{BtbOrg, CycleBreakdown, SimConfig, TwoLevelBtbConfig};
use std::fmt::Write as _;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/golden_stats.json");
const GOLDEN_TWO_LEVEL: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/golden_stats_two_level.json");
const BENCHES: [&str; 3] = ["fibo", "random", "spectral-norm"];

fn configs() -> [SimConfig; 2] {
    [SimConfig::embedded_a5(), SimConfig::fpga_rocket()]
}

/// Runs the pinned matrix and renders every record into the canonical
/// golden-file text. The `Debug` formatting of `SimStats` and
/// `CycleBreakdown` spells out every counter, so string equality is
/// field-for-field bit equality.
fn render_current() -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for cfg in configs() {
        for vm in Vm::ALL {
            for name in BENCHES {
                let b = BENCHMARKS.iter().find(|b| b.name == name).expect("pinned benchmark");
                for scheme in [Scheme::Baseline, Scheme::Scd] {
                    let key = format!("{}/{}/{}/{}", cfg.name, vm.name(), name, scheme.name());
                    let mut session = Session::from_source(
                        cfg.clone(),
                        vm,
                        b.source,
                        &[("N", b.tiny_arg)],
                        scheme,
                        GuestOptions::default(),
                    )
                    .unwrap_or_else(|e| panic!("{key}: {e}"));
                    let fingerprint = session.machine.snapshot().fingerprint();
                    session.machine.set_trace_sink(Box::new(CycleBreakdown::default()));
                    let run = session
                        .run_and_validate(u64::MAX)
                        .unwrap_or_else(|e| panic!("{key}: {e}"));
                    let breakdown = session
                        .machine
                        .take_trace_sink()
                        .and_then(scd_sim::downcast_sink::<CycleBreakdown>)
                        .expect("breakdown sink comes back out");
                    if !first {
                        out.push_str(",\n");
                    }
                    first = false;
                    let _ = write!(
                        out,
                        "  {{\n    \"key\": \"{key}\",\n    \"fingerprint\": \
                         \"{fingerprint:#018x}\",\n    \"stats\": \"{:?}\",\n    \
                         \"breakdown\": \"{:?}\"\n  }}",
                        run.stats, breakdown,
                    );
                }
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// The monomorphized fast run loop (no tracer, no invariants, no
/// profile, no fault plan) must be *statistically invisible*: every
/// `SimStats` counter it produces is bit-identical to the fully
/// observed loop's. This is the contract that lets the sweep run
/// untraced for speed while the goldens are pinned through the traced
/// path.
#[test]
fn fast_and_observed_loops_agree_bit_for_bit() {
    for cfg in configs() {
        for scheme in Scheme::ALL {
            let b = BENCHMARKS.iter().find(|b| b.name == "fibo").expect("pinned benchmark");
            let key = format!("{}/{}", cfg.name, scheme.name());
            let build = || {
                Session::from_source(
                    cfg.clone(),
                    Vm::ALL[0],
                    b.source,
                    &[("N", b.tiny_arg)],
                    scheme,
                    GuestOptions::default(),
                )
                .unwrap_or_else(|e| panic!("{key}: {e}"))
            };

            // Fast path: strip every observer (debug builds auto-arm
            // the invariant checker, so drop it explicitly).
            let mut fast = build();
            fast.machine.disable_invariants();
            let fast_run =
                fast.machine.run(u64::MAX).unwrap_or_else(|e| panic!("{key} fast: {e}"));
            let fast_stats = fast.machine.stats.clone();

            // Observed path: tracer + invariant checkpoints armed.
            let mut obs = build();
            obs.machine.enable_invariants(4096);
            obs.machine.set_trace_sink(Box::new(CycleBreakdown::default()));
            let obs_run = obs.machine.run(u64::MAX).unwrap_or_else(|e| panic!("{key} obs: {e}"));
            let obs_stats = obs.machine.stats.clone();

            assert_eq!(fast_run, obs_run, "{key}: exit state diverged");
            assert_eq!(
                format!("{fast_stats:?}"),
                format!("{obs_stats:?}"),
                "{key}: fast-loop SimStats diverged from observed loop"
            );
        }
    }
}

/// The execute-ahead replay loop (functional execution batched ahead by
/// the reference core, timing replayed from the retirement stream) must
/// produce `SimStats` bit-identical to the interleaved loop that
/// executes and times each instruction in one pass. This is the
/// tentpole contract of the replay split: the fast path is a pure
/// reorganization of *when* semantics run, never of *what* the timing
/// model observes. Covers all three dispatch schemes on both pinned
/// hardware presets.
#[test]
fn replay_and_interleaved_agree_bit_for_bit() {
    for cfg in configs() {
        for scheme in Scheme::ALL {
            let b = BENCHMARKS.iter().find(|b| b.name == "fibo").expect("pinned benchmark");
            let key = format!("{}/{}", cfg.name, scheme.name());
            let build = || {
                Session::from_source(
                    cfg.clone(),
                    Vm::ALL[0],
                    b.source,
                    &[("N", b.tiny_arg)],
                    scheme,
                    GuestOptions::default(),
                )
                .unwrap_or_else(|e| panic!("{key}: {e}"))
            };

            // Replay path: untraced, uninstrumented. Forced, so the
            // threaded engine is exercised even on one-CPU hosts where
            // the default would fall back to the interleaved loop.
            let mut rep = build();
            rep.machine.disable_invariants();
            rep.machine.force_replay();
            let rep_run =
                rep.machine.run(u64::MAX).unwrap_or_else(|e| panic!("{key} replay: {e}"));
            let rep_stats = rep.machine.stats.clone();

            // Interleaved path: identical observer set, replay pinned off.
            let mut ilv = build();
            ilv.machine.disable_invariants();
            ilv.machine.set_replay(false);
            let ilv_run =
                ilv.machine.run(u64::MAX).unwrap_or_else(|e| panic!("{key} interleaved: {e}"));
            let ilv_stats = ilv.machine.stats.clone();

            assert_eq!(rep_run, ilv_run, "{key}: exit state diverged");
            assert_eq!(
                format!("{rep_stats:?}"),
                format!("{ilv_stats:?}"),
                "{key}: replay-loop SimStats diverged from interleaved loop"
            );
        }
    }
}

fn check_golden(golden_path: &str, current: &str) {
    if std::env::var_os("SCD_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(golden_path).parent().unwrap())
            .expect("golden dir");
        std::fs::write(golden_path, current).expect("write golden");
        eprintln!("blessed {golden_path}");
        return;
    }
    let committed = std::fs::read_to_string(golden_path)
        .expect("golden file committed (regenerate with SCD_BLESS=1)");
    if current != committed {
        for (i, (c, g)) in current.lines().zip(committed.lines()).enumerate() {
            if c != g {
                panic!(
                    "golden stats diverge at line {} —\n  current:  {c}\n  golden:   {g}\n\
                     If this timing change is intentional, regenerate with \
                     SCD_BLESS=1 cargo test -q --test golden_stats",
                    i + 1
                );
            }
        }
        panic!("golden stats diverge in record count (current vs committed golden)");
    }
}

#[test]
fn pinned_matrix_matches_golden() {
    // Both pinned presets carry the Ideal organization, so this matrix
    // — and its committed golden — is untouched by the two-level code
    // path. Guard that explicitly before the byte comparison.
    for cfg in configs() {
        assert_eq!(cfg.btb.org, BtbOrg::Ideal, "{}: preset must stay Ideal-org", cfg.name);
    }
    check_golden(GOLDEN, &render_current());
}

/// Runs `fibo` under the realistic two-level BTB (ARM-like L0+L1,
/// XOR-folded indices) for all three dispatch schemes and renders the
/// records, including the organization's own counters.
fn render_two_level() -> String {
    let cfg = SimConfig::embedded_a5().with_two_level_btb(TwoLevelBtbConfig::arm_like());
    let b = BENCHMARKS.iter().find(|b| b.name == "fibo").expect("pinned benchmark");
    let mut out = String::from("[\n");
    let mut first = true;
    for scheme in Scheme::ALL {
        let key = format!("{}+two-level/lvm/fibo/{}", cfg.name, scheme.name());
        let mut session = Session::from_source(
            cfg.clone(),
            Vm::ALL[0],
            b.source,
            &[("N", b.tiny_arg)],
            scheme,
            GuestOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{key}: {e}"));
        let fingerprint = session.machine.snapshot().fingerprint();
        session.machine.set_trace_sink(Box::new(CycleBreakdown::default()));
        let run = session.run_and_validate(u64::MAX).unwrap_or_else(|e| panic!("{key}: {e}"));
        let breakdown = session
            .machine
            .take_trace_sink()
            .and_then(scd_sim::downcast_sink::<CycleBreakdown>)
            .expect("breakdown sink comes back out");
        let tl = session.machine.btb().two_level_stats().expect("two-level org is active");
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\n    \"key\": \"{key}\",\n    \"fingerprint\": \
             \"{fingerprint:#018x}\",\n    \"stats\": \"{:?}\",\n    \
             \"breakdown\": \"{:?}\",\n    \"two_level\": \"{tl:?}\"\n  }}",
            run.stats, breakdown,
        );
    }
    out.push_str("\n]\n");
    out
}

/// The two-level organization is deterministic (two fresh runs of the
/// matrix render byte-identically) and pinned: `SimStats`, the event
/// breakdown, the config fingerprint — which must differ from the
/// Ideal-org fingerprint of the same preset — and the L0/L1 motion
/// counters all match the committed golden.
#[test]
fn two_level_btb_stats_are_deterministic() {
    let current = render_two_level();
    assert_eq!(current, render_two_level(), "two-level stats drift run to run");
    let ideal = SimConfig::embedded_a5();
    let two = SimConfig::embedded_a5().with_two_level_btb(TwoLevelBtbConfig::arm_like());
    assert_ne!(
        format!("{:?}", ideal.btb),
        format!("{:?}", two.btb),
        "two-level configs must not collide with Ideal cache/snapshot keys"
    );
    check_golden(GOLDEN_TWO_LEVEL, &current);
}

/// The replay/interleaved bit-identity contract extends to the
/// two-level organization: its extra timing (promotions, demotions,
/// L1-late targets) must be charged identically by both loops.
#[test]
fn two_level_replay_and_interleaved_agree_bit_for_bit() {
    let cfg = SimConfig::embedded_a5().with_two_level_btb(TwoLevelBtbConfig::arm_like());
    for scheme in Scheme::ALL {
        let b = BENCHMARKS.iter().find(|b| b.name == "fibo").expect("pinned benchmark");
        let key = format!("{}+two-level/{}", cfg.name, scheme.name());
        let build = || {
            Session::from_source(
                cfg.clone(),
                Vm::ALL[0],
                b.source,
                &[("N", b.tiny_arg)],
                scheme,
                GuestOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{key}: {e}"))
        };

        let mut rep = build();
        rep.machine.disable_invariants();
        rep.machine.force_replay();
        let rep_run = rep.machine.run(u64::MAX).unwrap_or_else(|e| panic!("{key} replay: {e}"));
        let rep_stats = rep.machine.stats.clone();
        let rep_tl = rep.machine.btb().two_level_stats();

        let mut ilv = build();
        ilv.machine.disable_invariants();
        ilv.machine.set_replay(false);
        let ilv_run =
            ilv.machine.run(u64::MAX).unwrap_or_else(|e| panic!("{key} interleaved: {e}"));
        let ilv_stats = ilv.machine.stats.clone();
        let ilv_tl = ilv.machine.btb().two_level_stats();

        assert_eq!(rep_run, ilv_run, "{key}: exit state diverged");
        assert_eq!(
            format!("{rep_stats:?}"),
            format!("{ilv_stats:?}"),
            "{key}: replay-loop SimStats diverged from interleaved loop"
        );
        assert_eq!(
            format!("{rep_tl:?}"),
            format!("{ilv_tl:?}"),
            "{key}: two-level motion counters diverged between loops"
        );
    }
}
