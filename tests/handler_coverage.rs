//! Exercises (nearly) every bytecode handler of both guest interpreters
//! with a kitchen-sink script, verifying coverage through the oracle's
//! dynamic opcode histogram and correctness through the usual
//! guest-vs-oracle checks.

use luma::lvm::bytecode::Op as LOp;
use luma::svm::bytecode::Op as SOp;
use scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd_sim::SimConfig;

/// Touches every language feature: literals, booleans, nil, globals,
/// locals, arrays (dynamic + literal), all arithmetic (register and
/// constant forms), comparisons in both orders, logic, unary ops,
/// builtins, numeric for (up and down), while + break, calls (named and
/// first-class), deep expressions, and early returns.
const KITCHEN_SINK: &str = "
    var g = 10;
    fn choose(c, x, y) {
        if c { return x; }
        return y;
    }
    fn poly(x) {
        return x * x * 1.5 - x / 2 + x % 3;
    }
    var a = array(8);
    var lit = [2, 4, 6];
    for i = 0, 7 { a[i] = poly(i + 0.5); }
    var total = 0;
    for i = 7, 0, -1 { total = total + a[i]; }
    emit(total);
    emit(len(a) + len(lit));
    var f = poly;
    emit(f(4));
    var i = 0;
    while true {
        i = i + 1;
        if i >= 5 and not (i == 7) { break; }
    }
    emit(i);
    emit(choose(i > 4, floor(2.9), sqrt(16)));
    emit(choose(nil == false, 1, 2));
    emit(min(abs(0 - 3), max(1, 2)));
    var flag = true;
    if flag != true { emit(0 - 1); } else { emit(42); }
    g = g + total * 0;
    emit(g <= 10);
    emit(g >= 11 or i < 100);
    lit[1] = lit[0] + lit[2];
    emit(lit[1]);

    # variable-variable arithmetic (register forms, incl. Mod/Div/Sub/Mul)
    var m = 17;
    var d = 5;
    emit(m % d);
    emit(m / d);
    emit(m - d);
    emit(m * d);
    emit(-m + -d);
    if m == d { emit(1); } else { emit(2); }
    if m != d { emit(3); } else { emit(4); }
    if m < d or d <= m { emit(5); }

    # wide literals and a big constant pool (PushInt16 / PushConst)
    var wide = 12345;
    emit(wide % 1000);
    emit(0.125 + 0.25 + 0.375 + 0.625 + 0.875 + 1.125 + 1.375 + 1.625 + 1.875 + 2.125);

    # deep local frames (GetLocal3.. / SetLocal2.. / GetLocal n8)
    fn many(p0, p1, p2, p3, p4, p5, p6, p7, p8, p9) {
        var l0 = p0 + p9;
        var l1 = p1 + p8;
        var l2 = p2 + p7;
        var l3 = p3 + p6;
        var l4 = p4 + p5;
        l2 = l2 * 2;
        l3 = l3 * 3;
        l4 = l4 * 4;
        return l0 + l1 + l2 + l3 + l4;
    }
    emit(many(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

    # bare return (no value)
    fn side(arr2) {
        arr2[0] = 99;
        return;
    }
    side(lit);
    emit(lit[0]);
";

#[test]
fn lvm_opcode_coverage_is_near_total() {
    let script = luma::parser::parse(KITCHEN_SINK).unwrap();
    let (p, init) = luma::lvm::compile_lvm(&script, &[]).unwrap();
    let result = luma::lvm::LvmInterp::new(&p, &init).run(1_000_000).unwrap();
    let missing: Vec<LOp> = LOp::ALL
        .into_iter()
        .filter(|&op| result.op_counts[op as usize] == 0)
        .collect();
    // A few opcodes are legitimately situational; everything else must
    // have executed.
    assert!(
        missing.len() <= 6,
        "too many unexercised LVM opcodes: {missing:?}"
    );
    // The headline ones must always be covered.
    for op in [
        LOp::Move,
        LOp::LoadK,
        LOp::GetGlobal,
        LOp::SetGlobal,
        LOp::NewArr,
        LOp::NewArrI,
        LOp::GetIdx,
        LOp::SetIdx,
        LOp::Add,
        LOp::Mod,
        LOp::AddK,
        LOp::AddI,
        LOp::Jmp,
        LOp::Eq,
        LOp::Lt,
        LOp::TestT,
        LOp::TestF,
        LOp::Call,
        LOp::Return,
        LOp::ForPrep,
        LOp::ForLoop,
        LOp::Closure,
        LOp::CallB,
        LOp::Sqrt,
        LOp::Floor,
        LOp::Halt,
    ] {
        assert!(
            result.op_counts[op as usize] > 0,
            "{op:?} not exercised by the kitchen sink"
        );
    }
}

#[test]
fn svm_opcode_coverage_is_near_total() {
    let script = luma::parser::parse(KITCHEN_SINK).unwrap();
    let (p, init) = luma::svm::compile_svm(&script, &[]).unwrap();
    let result = luma::svm::SvmInterp::new(&p, &init).run(1_000_000).unwrap();
    let mut missing = Vec::new();
    for n in 0..luma::svm::bytecode::NUM_IMPLEMENTED {
        let op = SOp::from_u8(n as u8).unwrap();
        // Nop exists for alignment/patching and is never emitted.
        if op != SOp::Nop && result.op_counts[n as usize] == 0 {
            missing.push(op);
        }
    }
    // Specialized forms beyond what this script needs may stay cold, but
    // the bulk must run.
    assert!(
        missing.len() <= 4,
        "too many unexercised SVM opcodes ({}): {missing:?}",
        missing.len()
    );
    for op in [
        SOp::PushConst,
        SOp::PushInt8,
        SOp::GetLocal0,
        SOp::SetLocal0,
        SOp::GetGlobal,
        SOp::SetGlobal,
        SOp::Add,
        SOp::Mod,
        SOp::Lt,
        SOp::Eq,
        SOp::Jump,
        SOp::JumpIfFalse,
        SOp::PushFn,
        SOp::Call,
        SOp::ReturnVal,
        SOp::NewArray,
        SOp::GetElem,
        SOp::SetElemI,
        SOp::Builtin,
        SOp::Inc,
        SOp::Halt,
    ] {
        assert!(
            result.op_counts[op as u8 as usize] > 0,
            "{op:?} not exercised by the kitchen sink"
        );
    }
}

#[test]
fn kitchen_sink_runs_on_guests_in_all_schemes() {
    for vm in Vm::ALL {
        for scheme in Scheme::ALL {
            // run_source validates checksum + dispatch count internally.
            run_source(
                SimConfig::embedded_a5(),
                vm,
                KITCHEN_SINK,
                &[],
                scheme,
                GuestOptions::default(),
                50_000_000,
            )
            .unwrap_or_else(|e| panic!("kitchen sink on {vm:?}/{scheme:?}: {e}"));
        }
    }
}

#[test]
fn kitchen_sink_oracles_agree() {
    let l = luma::lvm::run_source(KITCHEN_SINK, &[], 1_000_000).unwrap();
    let s = luma::svm::run_source(KITCHEN_SINK, &[], 1_000_000).unwrap();
    assert_eq!(l.checksum, s.checksum);
    assert_eq!(l.emitted, s.emitted);
}

// ---- exhaustive coverage: seed benchmarks ∪ seeded fuzz programs ----

/// SplitMix64 — the same stream construction as `scd_ref::gen`, local so
/// this tier-1 test does not depend on the oracle crate.
struct SrcRng(u64);

impl SrcRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates one seeded, always-terminating Luma fuzz program. Each
/// program mixes randomized arithmetic/comparison/logic expressions,
/// arrays with constant and computed indexing, bounded loops, functions
/// (bare and valued returns, wide frames, first-class calls) and
/// builtins, so that across many seeds every compiler emission form —
/// including the specialized constant/local/index opcodes — gets hit.
fn gen_luma_source(seed: u64) -> String {
    use std::fmt::Write as _;
    let mut r = SrcRng(seed);
    let mut s = String::new();
    let lit = |r: &mut SrcRng| -> String {
        match r.below(4) {
            0 => format!("{}", r.below(100)),              // i8-range int
            1 => format!("{}", 300 + r.below(20_000)),     // i16-range int
            2 => format!("{}.{}", r.below(50), r.below(100)), // const pool
            _ => format!("{}", r.below(10)),
        }
    };
    let vars = ["va", "vb", "vc", "vd"];
    for v in vars {
        let _ = writeln!(s, "var {v} = {};", lit(&mut r));
    }
    let _ = writeln!(s, "var arr = [{}, {}, {}];", lit(&mut r), lit(&mut r), lit(&mut r));
    let _ = writeln!(s, "var dyn2 = array({});", 2 + r.below(6));

    // A function with a wide frame (locals beyond the specialized
    // range) and a function with a bare return.
    let _ = writeln!(
        s,
        "fn wide(p0, p1, p2, p3, p4, p5, p6, p7, p8, p9) {{\n\
         var w0 = p0 + p{}; var w1 = p1 * p{}; var w2 = p2 - p{};\n\
         return w0 + w1 + w2 + p9;\n}}",
        2 + r.below(8),
        2 + r.below(8),
        2 + r.below(8),
    );
    let _ = writeln!(s, "fn bare(t) {{ t[{}] = {}; return; }}", r.below(3), lit(&mut r));

    let arith = ["+", "-", "*", "/", "%"];
    let cmp = ["==", "!=", "<", "<=", ">", ">="];
    for _ in 0..6 + r.below(6) {
        let a = vars[r.below(4) as usize];
        let b = vars[r.below(4) as usize];
        match r.below(10) {
            0 => {
                let _ = writeln!(
                    s,
                    "{a} = ({b} {} {}) {} {a};",
                    arith[r.below(5) as usize],
                    lit(&mut r),
                    arith[r.below(5) as usize],
                );
            }
            1 => {
                let _ = writeln!(
                    s,
                    "emit({a} {} {});",
                    cmp[r.below(6) as usize],
                    if r.below(2) == 0 { lit(&mut r) } else { b.to_string() },
                );
            }
            2 => {
                let _ = writeln!(s, "emit(-{a} + len(arr) - len(dyn2));");
            }
            3 => {
                let _ = writeln!(s, "arr[{}] = {a} + {};", r.below(3), lit(&mut r));
                let _ = writeln!(s, "emit(arr[{}]);", r.below(3));
            }
            4 => {
                let idx = r.below(3);
                let _ = writeln!(s, "var i{idx} = {idx};");
                let _ = writeln!(s, "arr[i{idx}] = arr[i{idx}] * {};", lit(&mut r));
            }
            5 => {
                let _ = writeln!(
                    s,
                    "if ({a} < {} and {b} >= 0) or not ({a} == {b}) {{ emit(1); }} \
                     else {{ emit({}); }}",
                    lit(&mut r),
                    lit(&mut r),
                );
            }
            6 => {
                let _ = writeln!(
                    s,
                    "for k = 0, {} {{ {a} = {a} + k; }}",
                    1 + r.below(8)
                );
                let _ = writeln!(
                    s,
                    "for k = {}, 0, -1 {{ {b} = {b} - 1; }}",
                    1 + r.below(8)
                );
            }
            7 => {
                let _ = writeln!(
                    s,
                    "var n = 0;\nwhile true {{ n = n + 1; if n >= {} {{ break; }} }}\nemit(n);",
                    1 + r.below(9),
                );
            }
            8 => {
                let _ = writeln!(
                    s,
                    "emit(wide({}, {}, {}, {}, 1, 2, 3, 4, 5, {}));",
                    lit(&mut r),
                    lit(&mut r),
                    lit(&mut r),
                    lit(&mut r),
                    lit(&mut r),
                );
                let _ = writeln!(s, "bare(arr);");
            }
            _ => {
                let _ = writeln!(
                    s,
                    "emit(min(sqrt(abs({a})), max(floor({b}), {})));",
                    lit(&mut r),
                );
                let _ = writeln!(s, "var maybe = nil; emit(maybe == nil); maybe = true;");
                let _ = writeln!(s, "emit(choosefn({a} > {b}));");
            }
        }
    }
    // choosefn used above may or may not be generated; always define it
    // (first-class function value + valued return on both paths).
    format!(
        "fn choosefn(c) {{ if c {{ return 1; }} return 0; }}\nvar fv = choosefn;\nemit(fv(true));\n{s}"
    )
}

/// Every handler of both interpreters must be reached by the union of
/// the seed benchmarks (tiny inputs) and 64 seeded fuzz programs. Fails
/// naming the cold opcodes. SVM `Nop` is excluded: it exists for
/// patching and is never emitted.
#[test]
fn all_handlers_reached_by_benchmarks_and_fuzz_union() {
    let mut lvm = vec![0u64; LOp::ALL.len()];
    let mut svm = vec![0u64; luma::svm::bytecode::NUM_IMPLEMENTED as usize];
    let mut absorb = |src: &str, args: &[(&str, f64)]| {
        let r = luma::lvm::run_source(src, args, 50_000_000)
            .unwrap_or_else(|e| panic!("lvm rejected a fuzz program: {e}\n{src}"));
        for (i, c) in r.op_counts.iter().enumerate() {
            lvm[i] += c;
        }
        let r = luma::svm::run_source(src, args, 50_000_000)
            .unwrap_or_else(|e| panic!("svm rejected a fuzz program: {e}\n{src}"));
        for (i, c) in r.op_counts.iter().enumerate() {
            if i < svm.len() {
                svm[i] += c;
            }
        }
    };
    for b in luma::scripts::BENCHMARKS {
        absorb(b.source, &[("N", b.tiny_arg)]);
    }
    for i in 0..64u64 {
        absorb(&gen_luma_source(0x5EED ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)), &[]);
    }
    let lvm_missing: Vec<LOp> =
        LOp::ALL.into_iter().filter(|&op| lvm[op as usize] == 0).collect();
    let svm_missing: Vec<SOp> = (0..svm.len())
        .map(|n| SOp::from_u8(n as u8).unwrap())
        .filter(|&op| op != SOp::Nop && svm[op as u8 as usize] == 0)
        .collect();
    assert!(
        lvm_missing.is_empty() && svm_missing.is_empty(),
        "handlers never reached by benchmarks ∪ fuzz programs:\n  LVM: {lvm_missing:?}\n  SVM: {svm_missing:?}"
    );
}
