//! Exercises (nearly) every bytecode handler of both guest interpreters
//! with a kitchen-sink script, verifying coverage through the oracle's
//! dynamic opcode histogram and correctness through the usual
//! guest-vs-oracle checks.

use luma::lvm::bytecode::Op as LOp;
use luma::svm::bytecode::Op as SOp;
use scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd_sim::SimConfig;

/// Touches every language feature: literals, booleans, nil, globals,
/// locals, arrays (dynamic + literal), all arithmetic (register and
/// constant forms), comparisons in both orders, logic, unary ops,
/// builtins, numeric for (up and down), while + break, calls (named and
/// first-class), deep expressions, and early returns.
const KITCHEN_SINK: &str = "
    var g = 10;
    fn choose(c, x, y) {
        if c { return x; }
        return y;
    }
    fn poly(x) {
        return x * x * 1.5 - x / 2 + x % 3;
    }
    var a = array(8);
    var lit = [2, 4, 6];
    for i = 0, 7 { a[i] = poly(i + 0.5); }
    var total = 0;
    for i = 7, 0, -1 { total = total + a[i]; }
    emit(total);
    emit(len(a) + len(lit));
    var f = poly;
    emit(f(4));
    var i = 0;
    while true {
        i = i + 1;
        if i >= 5 and not (i == 7) { break; }
    }
    emit(i);
    emit(choose(i > 4, floor(2.9), sqrt(16)));
    emit(choose(nil == false, 1, 2));
    emit(min(abs(0 - 3), max(1, 2)));
    var flag = true;
    if flag != true { emit(0 - 1); } else { emit(42); }
    g = g + total * 0;
    emit(g <= 10);
    emit(g >= 11 or i < 100);
    lit[1] = lit[0] + lit[2];
    emit(lit[1]);

    # variable-variable arithmetic (register forms, incl. Mod/Div/Sub/Mul)
    var m = 17;
    var d = 5;
    emit(m % d);
    emit(m / d);
    emit(m - d);
    emit(m * d);
    emit(-m + -d);
    if m == d { emit(1); } else { emit(2); }
    if m != d { emit(3); } else { emit(4); }
    if m < d or d <= m { emit(5); }

    # wide literals and a big constant pool (PushInt16 / PushConst)
    var wide = 12345;
    emit(wide % 1000);
    emit(0.125 + 0.25 + 0.375 + 0.625 + 0.875 + 1.125 + 1.375 + 1.625 + 1.875 + 2.125);

    # deep local frames (GetLocal3.. / SetLocal2.. / GetLocal n8)
    fn many(p0, p1, p2, p3, p4, p5, p6, p7, p8, p9) {
        var l0 = p0 + p9;
        var l1 = p1 + p8;
        var l2 = p2 + p7;
        var l3 = p3 + p6;
        var l4 = p4 + p5;
        l2 = l2 * 2;
        l3 = l3 * 3;
        l4 = l4 * 4;
        return l0 + l1 + l2 + l3 + l4;
    }
    emit(many(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

    # bare return (no value)
    fn side(arr2) {
        arr2[0] = 99;
        return;
    }
    side(lit);
    emit(lit[0]);
";

#[test]
fn lvm_opcode_coverage_is_near_total() {
    let script = luma::parser::parse(KITCHEN_SINK).unwrap();
    let (p, init) = luma::lvm::compile_lvm(&script, &[]).unwrap();
    let result = luma::lvm::LvmInterp::new(&p, &init).run(1_000_000).unwrap();
    let missing: Vec<LOp> = LOp::ALL
        .into_iter()
        .filter(|&op| result.op_counts[op as usize] == 0)
        .collect();
    // A few opcodes are legitimately situational; everything else must
    // have executed.
    assert!(
        missing.len() <= 6,
        "too many unexercised LVM opcodes: {missing:?}"
    );
    // The headline ones must always be covered.
    for op in [
        LOp::Move,
        LOp::LoadK,
        LOp::GetGlobal,
        LOp::SetGlobal,
        LOp::NewArr,
        LOp::NewArrI,
        LOp::GetIdx,
        LOp::SetIdx,
        LOp::Add,
        LOp::Mod,
        LOp::AddK,
        LOp::AddI,
        LOp::Jmp,
        LOp::Eq,
        LOp::Lt,
        LOp::TestT,
        LOp::TestF,
        LOp::Call,
        LOp::Return,
        LOp::ForPrep,
        LOp::ForLoop,
        LOp::Closure,
        LOp::CallB,
        LOp::Sqrt,
        LOp::Floor,
        LOp::Halt,
    ] {
        assert!(
            result.op_counts[op as usize] > 0,
            "{op:?} not exercised by the kitchen sink"
        );
    }
}

#[test]
fn svm_opcode_coverage_is_near_total() {
    let script = luma::parser::parse(KITCHEN_SINK).unwrap();
    let (p, init) = luma::svm::compile_svm(&script, &[]).unwrap();
    let result = luma::svm::SvmInterp::new(&p, &init).run(1_000_000).unwrap();
    let mut missing = Vec::new();
    for n in 0..luma::svm::bytecode::NUM_IMPLEMENTED {
        let op = SOp::from_u8(n as u8).unwrap();
        // Nop exists for alignment/patching and is never emitted.
        if op != SOp::Nop && result.op_counts[n as usize] == 0 {
            missing.push(op);
        }
    }
    // Specialized forms beyond what this script needs may stay cold, but
    // the bulk must run.
    assert!(
        missing.len() <= 4,
        "too many unexercised SVM opcodes ({}): {missing:?}",
        missing.len()
    );
    for op in [
        SOp::PushConst,
        SOp::PushInt8,
        SOp::GetLocal0,
        SOp::SetLocal0,
        SOp::GetGlobal,
        SOp::SetGlobal,
        SOp::Add,
        SOp::Mod,
        SOp::Lt,
        SOp::Eq,
        SOp::Jump,
        SOp::JumpIfFalse,
        SOp::PushFn,
        SOp::Call,
        SOp::ReturnVal,
        SOp::NewArray,
        SOp::GetElem,
        SOp::SetElemI,
        SOp::Builtin,
        SOp::Inc,
        SOp::Halt,
    ] {
        assert!(
            result.op_counts[op as u8 as usize] > 0,
            "{op:?} not exercised by the kitchen sink"
        );
    }
}

#[test]
fn kitchen_sink_runs_on_guests_in_all_schemes() {
    for vm in Vm::ALL {
        for scheme in Scheme::ALL {
            // run_source validates checksum + dispatch count internally.
            run_source(
                SimConfig::embedded_a5(),
                vm,
                KITCHEN_SINK,
                &[],
                scheme,
                GuestOptions::default(),
                50_000_000,
            )
            .unwrap_or_else(|e| panic!("kitchen sink on {vm:?}/{scheme:?}: {e}"));
        }
    }
}

#[test]
fn kitchen_sink_oracles_agree() {
    let l = luma::lvm::run_source(KITCHEN_SINK, &[], 1_000_000).unwrap();
    let s = luma::svm::run_source(KITCHEN_SINK, &[], 1_000_000).unwrap();
    assert_eq!(l.checksum, s.checksum);
    assert_eq!(l.emitted, s.emitted);
}
