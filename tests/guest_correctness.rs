//! End-to-end correctness: every benchmark of Table III runs to
//! completion on the simulated core, for both VMs and all three dispatch
//! schemes, and produces exactly the host oracle's checksum and
//! bytecode count. (The checks themselves live inside `run_source`,
//! which returns an error on any mismatch.)

use scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd_sim::SimConfig;

const MAX_INSTS: u64 = 2_000_000_000;

fn run_all(vm: Vm, scheme: Scheme) {
    for b in &luma::scripts::BENCHMARKS {
        let run = run_source(
            SimConfig::embedded_a5(),
            vm,
            b.source,
            &[("N", b.tiny_arg)],
            scheme,
            GuestOptions::default(),
            MAX_INSTS,
        )
        .unwrap_or_else(|e| panic!("{} on {:?}/{:?}: {e}", b.name, vm, scheme));
        assert!(run.dispatches > 0, "{} dispatched nothing", b.name);
        assert!(run.stats.instructions > run.dispatches, "{}", b.name);
    }
}

#[test]
fn lvm_baseline_matches_oracle() {
    run_all(Vm::Lvm, Scheme::Baseline);
}

#[test]
fn lvm_threaded_matches_oracle() {
    run_all(Vm::Lvm, Scheme::Threaded);
}

#[test]
fn lvm_scd_matches_oracle() {
    run_all(Vm::Lvm, Scheme::Scd);
}

#[test]
fn svm_baseline_matches_oracle() {
    run_all(Vm::Svm, Scheme::Baseline);
}

#[test]
fn svm_threaded_matches_oracle() {
    run_all(Vm::Svm, Scheme::Threaded);
}

#[test]
fn svm_scd_matches_oracle() {
    run_all(Vm::Svm, Scheme::Scd);
}

#[test]
fn schemes_agree_on_dispatch_count() {
    // The dispatch scheme must not change *what* executes, only how
    // dispatch happens: bytecode counts are identical across schemes.
    let b = luma::scripts::find("fibo").unwrap();
    let mut counts = Vec::new();
    for scheme in Scheme::ALL {
        let run = run_source(
            SimConfig::embedded_a5(),
            Vm::Lvm,
            b.source,
            &[("N", b.tiny_arg)],
            scheme,
            GuestOptions::default(),
            MAX_INSTS,
        )
        .unwrap();
        counts.push(run.dispatches);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}

#[test]
fn scd_reduces_instruction_count() {
    // The headline mechanism (Fig. 8): SCD executes fewer instructions
    // than the baseline for the same work.
    let b = luma::scripts::find("n-sieve").unwrap();
    let mut insts = Vec::new();
    for scheme in [Scheme::Baseline, Scheme::Scd] {
        let run = run_source(
            SimConfig::embedded_a5(),
            Vm::Lvm,
            b.source,
            &[("N", b.tiny_arg)],
            scheme,
            GuestOptions::default(),
            MAX_INSTS,
        )
        .unwrap();
        insts.push(run.stats.instructions);
    }
    assert!(
        insts[1] < insts[0],
        "SCD should reduce dynamic instructions: {} vs {}",
        insts[1],
        insts[0]
    );
}

#[test]
fn scd_reduces_dispatch_mispredictions() {
    // Fig. 9: the dispatch indirect jump's mispredictions mostly vanish.
    let b = luma::scripts::find("fannkuch-redux").unwrap();
    let mut mpki = Vec::new();
    for scheme in [Scheme::Baseline, Scheme::Scd] {
        let run = run_source(
            SimConfig::embedded_a5(),
            Vm::Lvm,
            b.source,
            &[("N", b.tiny_arg)],
            scheme,
            GuestOptions::default(),
            MAX_INSTS,
        )
        .unwrap();
        mpki.push(run.stats.branch_mpki());
    }
    assert!(
        mpki[1] < mpki[0] * 0.7,
        "SCD should cut branch MPKI: {:.2} vs {:.2}",
        mpki[1],
        mpki[0]
    );
}

#[test]
fn runs_on_fpga_and_highend_configs() {
    let b = luma::scripts::find("random").unwrap();
    for cfg in [SimConfig::fpga_rocket(), SimConfig::highend_a8()] {
        for vm in Vm::ALL {
            run_source(
                cfg.clone(),
                vm,
                b.source,
                &[("N", b.tiny_arg)],
                Scheme::Scd,
                GuestOptions::default(),
                MAX_INSTS,
            )
            .unwrap_or_else(|e| panic!("{} on {}: {e}", b.name, cfg.name));
        }
    }
}
