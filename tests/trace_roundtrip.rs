//! End-to-end check of the trace layer's central guarantee: the JSONL
//! event stream written by `--trace` is parseable, and replaying it
//! through [`ReplayStats`] reproduces the machine's own [`SimStats`]
//! exactly, field for field. This is the same code path `scd-cli run
//! --trace out.jsonl` uses.

use scd_guest::{run_source_with, GuestOptions, Scheme, Vm};
use scd_sim::{diff_stats, JsonlSink, ReplayStats, TraceEvent, VecSink};

const SRC: &str = "var s = 0; \
                   for i = 1, 120 { if s % 3 == 0 { s = s + i * 2; } else { s = s - i; } } \
                   emit(s);";

fn trace_file(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("scd-trace-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn jsonl_trace_replays_to_exact_stats() {
    for (vm, scheme) in [(Vm::Lvm, Scheme::Scd), (Vm::Svm, Scheme::Scd), (Vm::Lvm, Scheme::Baseline)]
    {
        let path = trace_file(&format!("{}-{}", vm.name(), scheme.name()));
        let run = run_source_with(
            scd_sim::SimConfig::embedded_a5(),
            vm,
            SRC,
            &[],
            scheme,
            GuestOptions::default(),
            u64::MAX,
            |m| {
                m.set_trace_sink(Box::new(JsonlSink::create(&path).expect("temp file")));
            },
        )
        .expect("program runs");

        let text = std::fs::read_to_string(&path).expect("trace written");
        let _ = std::fs::remove_file(&path);
        let mut replay = ReplayStats::default();
        for (i, line) in text.lines().enumerate() {
            let ev = TraceEvent::from_json(line)
                .unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
            replay.observe(&ev);
        }
        assert_eq!(replay.events(), run.stats.instructions, "one event per retirement");
        let replayed = replay.stats();
        if let Some(d) = diff_stats(&run.stats, &replayed) {
            panic!("replayed stats diverge [{} / {}]: {d}", vm.name(), scheme.name());
        }
        assert_eq!(replayed, run.stats);
    }
}

#[test]
fn vec_sink_matches_jsonl_sink() {
    // The in-memory sink sees the identical event stream the JSONL file
    // encodes (sanity for tests that skip the filesystem). The machine
    // owns the sink for the duration of the run and hands it back with
    // the `GuestRun` — no sharing.
    let mut run = run_source_with(
        scd_sim::SimConfig::embedded_a5(),
        Vm::Lvm,
        SRC,
        &[],
        Scheme::Scd,
        GuestOptions::default(),
        u64::MAX,
        |m| {
            m.set_trace_sink(Box::new(VecSink::default()));
        },
    )
    .expect("program runs");
    let events = run.take_sink::<VecSink>().expect("sink comes back with the run").events;
    assert!(!events.is_empty());
    for ev in &events {
        let back = TraceEvent::from_json(&ev.to_json()).expect("roundtrip");
        assert_eq!(&back, ev);
    }
}
