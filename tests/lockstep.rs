//! Tier-1 lockstep gates: the pinned reproducer corpus replays clean
//! against the architectural oracle under every SCD variant, and a real
//! interpreter guest co-simulates divergence-free end to end.

use scd_ref::corpus;
use scd_sim::{downcast_sink, LockstepSink, Machine, SimConfig, SimError};

/// The three SCD configurations the fuzz harness exercises; mirrored
/// here so a committed reproducer is replayed exactly as it was found.
fn variant_configs() -> [(&'static str, SimConfig); 3] {
    let stall = SimConfig::embedded_a5();
    let mut fallthrough = SimConfig::embedded_a5();
    fallthrough.scd.stall_on_unready = false;
    let mut off = SimConfig::embedded_a5();
    off.scd.enabled = false;
    [("scd-stall", stall), ("scd-fallthrough", fallthrough), ("scd-off", off)]
}

#[test]
fn pinned_corpus_replays_lockstep_clean() {
    let dir = std::path::Path::new("tests/golden/lockstep");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus dir exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "the pinned corpus must not be empty");

    for path in &paths {
        let text = std::fs::read_to_string(path).expect("readable reproducer");
        let repro =
            corpus::load(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for (variant, cfg) in variant_configs() {
            let mut m = Machine::new(cfg, &repro.program);
            m.map("fuzzdata", repro.data_base, repro.data_size);
            m.set_trace_sink(Box::new(LockstepSink::new(&m)));
            let run = m.run(2_000_000);
            let sink = downcast_sink::<LockstepSink>(m.take_trace_sink().unwrap()).unwrap();
            if let Some(d) = sink.divergence() {
                panic!("{} [{variant}]: {d}", path.display());
            }
            match run {
                Ok(_) | Err(SimError::InstLimit { .. }) => {}
                Err(e) => panic!("{} [{variant}]: simulator error: {e}", path.display()),
            }
            assert!(
                sink.checked() > 100,
                "{} [{variant}]: only {} instructions checked",
                path.display(),
                sink.checked()
            );
        }
    }
}
