//! Tier-1 lockstep gates: the pinned reproducer corpus replays clean
//! against the architectural oracle under every SCD variant, and a real
//! interpreter guest co-simulates divergence-free end to end.

use scd_ref::corpus;
use scd_sim::{
    downcast_sink, LockstepSink, Machine, SimConfig, SimError, TwoLevelBtbConfig,
};

/// The three SCD configurations the fuzz harness exercises — mirrored
/// here so a committed reproducer is replayed exactly as it was found —
/// plus the realistic two-level BTB organization, which the pinned
/// adversarial-aliasing programs (`alias*.repro`) were engineered to
/// stress. Timing differs there; architectural lockstep must not.
fn variant_configs() -> [(&'static str, SimConfig); 4] {
    let stall = SimConfig::embedded_a5();
    let mut fallthrough = SimConfig::embedded_a5();
    fallthrough.scd.stall_on_unready = false;
    let mut off = SimConfig::embedded_a5();
    off.scd.enabled = false;
    let two_level = SimConfig::embedded_a5().with_two_level_btb(TwoLevelBtbConfig::arm_like());
    [
        ("scd-stall", stall),
        ("scd-fallthrough", fallthrough),
        ("scd-off", off),
        ("scd-two-level", two_level),
    ]
}

fn corpus_paths() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new("tests/golden/lockstep");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus dir exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "the pinned corpus must not be empty");
    paths
}

#[test]
fn pinned_corpus_replays_lockstep_clean() {
    let paths = corpus_paths();

    for path in &paths {
        let text = std::fs::read_to_string(path).expect("readable reproducer");
        let repro =
            corpus::load(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for (variant, cfg) in variant_configs() {
            let mut m = Machine::new(cfg, &repro.program);
            m.map("fuzzdata", repro.data_base, repro.data_size);
            m.set_trace_sink(Box::new(LockstepSink::new(&m)));
            let run = m.run(2_000_000);
            let sink = downcast_sink::<LockstepSink>(m.take_trace_sink().unwrap()).unwrap();
            if let Some(d) = sink.divergence() {
                panic!("{} [{variant}]: {d}", path.display());
            }
            match run {
                Ok(_) | Err(SimError::InstLimit { .. }) => {}
                Err(e) => panic!("{} [{variant}]: simulator error: {e}", path.display()),
            }
            assert!(
                sink.checked() > 100,
                "{} [{variant}]: only {} instructions checked",
                path.display(),
                sink.checked()
            );
        }
    }
}

/// Revalidates the whole reproducer corpus through the execute-ahead
/// replay loop: every program that once exposed a simulator/oracle
/// divergence must finish with the same outcome and bit-identical
/// `SimStats` on the replay path as on the interleaved reference loop.
/// The corpus is exactly the set of programs that historically found
/// edge cases, which makes it the sharpest input set for the replay
/// split too (bop barriers, faults, watchdog limits).
#[test]
fn pinned_corpus_replay_matches_interleaved() {
    for path in &corpus_paths() {
        let text = std::fs::read_to_string(path).expect("readable reproducer");
        let repro =
            corpus::load(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for (variant, cfg) in variant_configs() {
            let run_mode = |replay: bool| {
                let mut m = Machine::new(cfg.clone(), &repro.program);
                m.map("fuzzdata", repro.data_base, repro.data_size);
                m.disable_invariants();
                // Forced, so the threaded engine is exercised even on
                // one-CPU hosts where Auto falls back to interleaved.
                if replay {
                    m.force_replay();
                } else {
                    m.set_replay(false);
                }
                let run = m.run(2_000_000);
                (format!("{run:?}"), format!("{:?}", m.stats))
            };
            let (rep_run, rep_stats) = run_mode(true);
            let (ilv_run, ilv_stats) = run_mode(false);
            assert_eq!(
                rep_run,
                ilv_run,
                "{} [{variant}]: replay outcome diverged from interleaved",
                path.display()
            );
            assert_eq!(
                rep_stats,
                ilv_stats,
                "{} [{variant}]: replay SimStats diverged from interleaved",
                path.display()
            );
        }
    }
}
