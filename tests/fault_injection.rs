//! End-to-end robustness checks across the whole stack: the
//! fault-injection differential guard on real benchmark guests, the
//! watchdog's typed error, and bit-exact checkpoint/resume.

use scd_guest::{differential_check, GuestOptions, RunRequest, Scheme, Session, Vm};
use scd_sim::{FaultPlan, SimConfig, SimError, Snapshot, WatchdogKind};

/// Picks two cheap corpus benchmarks (one loop-heavy, one call-heavy) so
/// the guard sees realistic dispatch mixes without sim-scale runtimes.
fn seed_guests() -> Vec<(&'static str, f64)> {
    luma::scripts::BENCHMARKS
        .iter()
        .filter(|b| b.name == "spectral-norm" || b.name == "fibo")
        .map(|b| (b.source, b.tiny_arg))
        .collect()
}

#[test]
fn differential_guard_passes_on_seed_guests_under_standard_plans() {
    let guests = seed_guests();
    assert_eq!(guests.len(), 2, "corpus benchmarks renamed?");
    for (src, arg) in guests {
        let args = [("N", arg)];
        for plan in FaultPlan::standard_plans(0xFA117) {
            let req = RunRequest::new(SimConfig::embedded_a5(), Vm::Lvm, src)
                .predefined(&args)
                .scheme(Scheme::Scd);
            let report = differential_check(&req, plan, 128)
                .expect("faults must never change architectural results");
            assert_eq!(report.clean.checksum, report.faulted.checksum);
            assert!(
                report.faulted.stats.instructions >= report.clean.stats.instructions,
                "losing hints can only lengthen the retired path"
            );
        }
    }
}

#[test]
fn cycle_watchdog_returns_typed_error() {
    let src = "var s = 0; for i = 1, N { s = s + i; } emit(s);";
    let mut session = Session::from_source(
        SimConfig::embedded_a5(),
        Vm::Lvm,
        src,
        &[("N", 100_000.0)],
        Scheme::Scd,
        GuestOptions::default(),
    )
    .expect("compiles");
    session.machine.set_cycle_budget(5_000);
    match session.machine.run(u64::MAX) {
        Err(SimError::Watchdog { kind: WatchdogKind::Cycles, cycles, .. }) => {
            assert!(cycles >= 5_000);
        }
        other => panic!("expected cycle watchdog, got {other:?}"),
    }
}

#[test]
fn checkpoint_resume_reproduces_stats_exactly() {
    let src = "var s = 0; for i = 1, N { s = s + i * i % 7; } emit(s);";
    let args: &[(&str, f64)] = &[("N", 400.0)];
    let cfg = SimConfig::embedded_a5();

    // Reference: one uninterrupted run.
    let mut reference =
        Session::from_source(cfg.clone(), Vm::Lvm, src, args, Scheme::Scd, GuestOptions::default())
            .expect("compiles");
    let ref_run = reference.run_and_validate(u64::MAX).expect("reference run validates");

    // Interrupted run: stop mid-flight, snapshot, and serialize.
    let mut first =
        Session::from_source(cfg.clone(), Vm::Lvm, src, args, Scheme::Scd, GuestOptions::default())
            .expect("compiles");
    let cut = ref_run.stats.instructions / 2;
    match first.machine.run(cut) {
        Err(SimError::InstLimit { .. }) => {}
        other => panic!("expected to hit the chunk limit, got {other:?}"),
    }
    let bytes = first.machine.snapshot().to_bytes();

    // Resume in a fresh session (fresh machine, same guest build) from
    // the serialized snapshot and run to completion.
    let mut resumed =
        Session::from_source(cfg, Vm::Lvm, src, args, Scheme::Scd, GuestOptions::default())
            .expect("compiles");
    let snap = Snapshot::from_bytes(&bytes).expect("snapshot deserializes");
    resumed.machine.restore(&snap).expect("fingerprint matches");
    assert_eq!(resumed.machine.stats.instructions, cut);
    let resumed_run = resumed.run_and_validate(u64::MAX).expect("resumed run validates");

    assert_eq!(resumed_run.checksum, ref_run.checksum);
    assert_eq!(resumed_run.dispatches, ref_run.dispatches);
    assert_eq!(
        resumed_run.stats, ref_run.stats,
        "a resumed run must reproduce the uninterrupted run's SimStats exactly"
    );
}
