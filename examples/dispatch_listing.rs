//! Prints the assembly of the three dispatch loops — the reproduction of
//! the paper's Fig. 1(b) (canonical), Fig. 1(c) (jump-threaded tail) and
//! Fig. 4 (SCD-transformed) — straight from the guest builder.
//!
//! ```text
//! cargo run --release --example dispatch_listing
//! ```

use scd::luma;
use scd::scd_guest::{build_lvm_guest, build_lvm_image, GuestOptions, Scheme};

fn main() {
    let script = luma::parser::parse("emit(1);").expect("trivial script parses");
    let (p, init) = luma::lvm::compile_lvm(&script, &[]).expect("compiles");
    let img = build_lvm_image(&p, &init);

    for (scheme, figure) in [
        (Scheme::Baseline, "Fig. 1(b): canonical dispatch"),
        (Scheme::Scd, "Fig. 4: SCD-transformed dispatch"),
    ] {
        let guest = build_lvm_guest(&img, scheme, GuestOptions::default());
        let (start, end) = guest.annotations.dispatch_ranges[0];
        println!("==== {figure} ({} instructions) ====", (end - start) / 4 + 1);
        let listing = guest.program.listing();
        // Print the lines whose PC falls in the common dispatch range
        // (plus the trailing indirect jump).
        for line in listing.lines() {
            if let Some(pc) = parse_pc(line) {
                if pc >= start && pc <= end {
                    println!("{line}");
                }
            } else if line.ends_with(':') {
                // keep labels adjacent to the range readable
            }
        }
        println!();
    }

    // For the jump-threaded build, show one replicated handler tail.
    let guest = build_lvm_guest(&img, Scheme::Threaded, GuestOptions::default());
    let (start, end) = guest.annotations.dispatch_ranges[1]; // first handler tail
    println!("==== Fig. 1(c): jump-threaded dispatch replicated at a handler tail ====");
    for line in guest.program.listing().lines() {
        if let Some(pc) = parse_pc(line) {
            if pc >= start && pc <= end {
                println!("{line}");
            }
        }
    }
}

fn parse_pc(line: &str) -> Option<u64> {
    let t = line.trim_start();
    let hex = t.strip_prefix("0x")?;
    let end = hex.find(':')?;
    u64::from_str_radix(&hex[..end], 16).ok()
}
