//! A tiny Luma REPL running on the host oracle interpreter — handy for
//! exploring the language the benchmarks are written in.
//!
//! Each line is compiled as a whole program; definitions accumulate
//! across lines (globals and functions persist by textual accumulation,
//! the classic trick for a compile-only pipeline). `emit(...)` prints.
//!
//! ```text
//! cargo run --release --example luma_repl
//! luma> var x = 21;
//! luma> emit(x * 2);
//! 42
//! ```

use std::io::{BufRead, Write as _};

fn main() {
    let stdin = std::io::stdin();
    let mut defs = String::new(); // accumulated fn/var definitions
    let mut emitted_so_far = 0usize;
    println!("Luma REPL (host oracle). `emit(expr);` prints; ctrl-d exits.");
    loop {
        print!("luma> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":defs" {
            println!("{defs}");
            continue;
        }
        // Bare expressions get an implicit emit.
        let stmt = if !line.ends_with(';') && !line.ends_with('}') {
            format!("emit({line});")
        } else {
            line.to_string()
        };
        let candidate = format!("{defs}\n{stmt}");
        match luma::lvm::run_source(&candidate, &[], 50_000_000) {
            Ok(result) => {
                // Print only emissions new to this line.
                for v in result.emitted.iter().skip(emitted_so_far) {
                    println!("{}", luma::value::display(*v));
                }
                // Keep definitions (and their side effects) for next time.
                defs = candidate;
                emitted_so_far = result.emitted.len();
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
