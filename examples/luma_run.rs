//! Run an arbitrary Luma script file through the full stack: compile,
//! simulate under a chosen VM/scheme/core, validate against the oracle
//! and print statistics.
//!
//! ```text
//! cargo run --release --example luma_run -- path/to/script.luma \
//!     [--vm lvm|svm] [--scheme baseline|threaded|scd] \
//!     [--config a5|rocket|a8] [--arg N=123]
//! ```

use scd::scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd::scd_sim::SimConfig;

fn usage() -> ! {
    eprintln!(
        "usage: luma_run <script.luma> [--vm lvm|svm] [--scheme baseline|threaded|scd] \
         [--config a5|rocket|a8] [--arg NAME=VALUE]..."
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut vm = Vm::Lvm;
    let mut scheme = Scheme::Scd;
    let mut cfg = SimConfig::embedded_a5();
    let mut predefined: Vec<(String, f64)> = Vec::new();

    while let Some(a) = args.next() {
        match a.as_str() {
            "--vm" => {
                vm = match args.next().as_deref() {
                    Some("lvm") => Vm::Lvm,
                    Some("svm") => Vm::Svm,
                    _ => usage(),
                }
            }
            "--scheme" => {
                scheme = match args.next().as_deref() {
                    Some("baseline") => Scheme::Baseline,
                    Some("threaded") => Scheme::Threaded,
                    Some("scd") => Scheme::Scd,
                    _ => usage(),
                }
            }
            "--config" => {
                cfg = match args.next().as_deref() {
                    Some("a5") => SimConfig::embedded_a5(),
                    Some("rocket") => SimConfig::fpga_rocket(),
                    Some("a8") => SimConfig::highend_a8(),
                    _ => usage(),
                }
            }
            "--arg" => {
                let kv = args.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let v: f64 = v.parse().unwrap_or_else(|_| usage());
                predefined.push((k.to_string(), v));
            }
            _ if path.is_none() => path = Some(a),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let predefined: Vec<(&str, f64)> = predefined.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    match run_source(cfg.clone(), vm, &src, &predefined, scheme, GuestOptions::default(), u64::MAX)
    {
        Ok(run) => {
            println!("config        : {}", cfg.name);
            println!("vm / scheme   : {} / {}", vm.name(), scheme.name());
            println!("checksum      : {:#018x}", run.checksum);
            println!("bytecodes     : {}", run.dispatches);
            println!("instructions  : {}", run.stats.instructions);
            println!("cycles        : {}", run.stats.cycles);
            println!("IPC           : {:.3}", run.stats.ipc());
            println!("branch MPKI   : {:.2}", run.stats.branch_mpki());
            println!("I$ / D$ MPKI  : {:.2} / {:.2}", run.stats.icache_mpki(), run.stats.dcache.mpki(run.stats.instructions));
            if scheme == Scheme::Scd {
                println!(
                    "bop hit rate  : {:.1}% ({} stall cycles)",
                    100.0 * run.stats.bop_hits as f64 / run.stats.bop_executed.max(1) as f64,
                    run.stats.bop_stall_cycles
                );
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
