//! A compact version of the Fig. 11 sensitivity study: how SCD's benefit
//! changes with BTB capacity and the JTE cap, on one workload.
//!
//! ```text
//! cargo run --release --example btb_sensitivity
//! ```

use scd::luma::scripts;
use scd::scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd::scd_sim::SimConfig;

fn cycles(cfg: SimConfig, scheme: Scheme, src: &str, n: f64) -> u64 {
    run_source(cfg, Vm::Lvm, src, &[("N", n)], scheme, GuestOptions::default(), u64::MAX)
        .expect("benchmark runs")
        .stats
        .cycles
}

fn main() {
    let b = scripts::find("n-sieve").expect("benchmark exists");
    let n = b.tiny_arg;

    println!("SCD speedup vs BTB size ({}, N={n}):", b.name);
    for entries in [64, 128, 256, 512] {
        let cfg = SimConfig::embedded_a5().with_btb_entries(entries);
        let base = cycles(cfg.clone(), Scheme::Baseline, b.source, n);
        let scd = cycles(cfg, Scheme::Scd, b.source, n);
        println!(
            "  {entries:>4} entries: {:+.1}%  (baseline {base} cycles, SCD {scd})",
            100.0 * (base as f64 / scd as f64 - 1.0)
        );
    }

    println!("\nSCD speedup vs JTE cap at a 64-entry BTB:");
    let small = SimConfig::embedded_a5().with_btb_entries(64);
    let base = cycles(small.clone(), Scheme::Baseline, b.source, n);
    for (cap, label) in [(Some(4), "4"), (Some(16), "16"), (None, "unbounded")] {
        let cfg = small.clone().with_jte_cap(cap);
        let scd = cycles(cfg, Scheme::Scd, b.source, n);
        println!("  cap {label:>9}: {:+.1}%", 100.0 * (base as f64 / scd as f64 - 1.0));
    }
}
