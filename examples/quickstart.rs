//! Quickstart: compile a script, run it on the simulated embedded core
//! with and without Short-Circuit Dispatch, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scd::scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd::scd_sim::SimConfig;

const SCRIPT: &str = "
    # Sum of the first N primes, the scripting way.
    fn is_prime(n) {
        if n < 2 { return false; }
        var d = 2;
        while d * d <= n {
            if n % d == 0 { return false; }
            d = d + 1;
        }
        return true;
    }

    var found = 0;
    var sum = 0;
    var n = 2;
    while found < N {
        if is_prime(n) { found = found + 1; sum = sum + n; }
        n = n + 1;
    }
    emit(sum);
";

fn main() -> Result<(), String> {
    let args = [("N", 150.0)];
    println!("running the prime-sum script on the simulated Cortex-A5-class core...\n");

    let mut baseline_cycles = 0;
    for scheme in [Scheme::Baseline, Scheme::Threaded, Scheme::Scd] {
        let run = run_source(
            SimConfig::embedded_a5(),
            Vm::Lvm,
            SCRIPT,
            &args,
            scheme,
            GuestOptions::default(),
            u64::MAX,
        )?;
        if scheme == Scheme::Baseline {
            baseline_cycles = run.stats.cycles;
        }
        println!("{:<16}", scheme.name());
        println!("  checksum     : {:#018x} (validated against the host oracle)", run.checksum);
        println!("  bytecodes    : {}", run.dispatches);
        println!("  instructions : {}", run.stats.instructions);
        println!("  cycles       : {}", run.stats.cycles);
        println!("  IPC          : {:.3}", run.stats.ipc());
        println!("  branch MPKI  : {:.2}", run.stats.branch_mpki());
        if scheme == Scheme::Scd {
            println!(
                "  bop hits     : {} / {} dispatches short-circuited",
                run.stats.bop_hits, run.stats.bop_executed
            );
            println!("  JTE inserts  : {}", run.stats.btb.jte_inserts);
        }
        println!(
            "  speedup      : {:+.1}% over baseline\n",
            100.0 * (baseline_cycles as f64 / run.stats.cycles as f64 - 1.0)
        );
    }
    Ok(())
}
