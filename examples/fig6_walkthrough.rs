//! Reproduces the paper's Figure 6 running example: the BTB state as
//! SCD executes — the slow path inserting JTEs via `jru`, the fast path
//! hitting via `bop`, and `jte.flush` clearing JTEs while sparing
//! ordinary BTB entries.
//!
//! ```text
//! cargo run --release --example fig6_walkthrough
//! ```

use scd::scd_isa::{Asm, LoadOp, Reg};
use scd::scd_sim::{EntryKind, Machine, SimConfig};

/// A micro-interpreter with three opcodes: 0 = increment, 2 = exit,
/// 3 = flush-then-exit. Runs the given bytecode stream to completion.
fn run_interp(bytecodes: &[u32]) -> Machine {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::S1, 0x10_0000);
    a.li(Reg::T0, 0x3F);
    a.setmask(0, Reg::T0);
    // Warm-up loop: puts an ordinary B entry in the BTB, like the two
    // valid BTB entries of Fig. 6(a)'s initial state.
    a.li(Reg::T1, 4);
    a.label("warm");
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, "warm");

    // The dispatch loop of Fig. 4.
    a.label("dispatch");
    a.load_op(LoadOp::Lwu, 0, Reg::A0, 0, Reg::S1);
    a.addi(Reg::S1, Reg::S1, 4);
    a.bop(0);
    a.andi(Reg::A1, Reg::A0, 0x3F);
    a.slli(Reg::T1, Reg::A1, 3);
    a.la(Reg::T2, "jt");
    a.add(Reg::T1, Reg::T1, Reg::T2);
    a.ld(Reg::T3, 0, Reg::T1);
    a.jru(0, Reg::T3);

    a.label("h_incr"); // opcode 0: OP_LOAD stand-in
    a.addi(Reg::A2, Reg::A2, 1);
    a.j("dispatch");
    a.label("h_exit"); // opcode 2: leave the loop without flushing
    a.mv(Reg::A0, Reg::A2);
    a.li(Reg::A7, 0);
    a.ecall();
    a.label("h_exit_flush"); // opcode 3: Fig. 6(d) — jte.flush on exit
    a.jte_flush();
    a.mv(Reg::A0, Reg::A2);
    a.li(Reg::A7, 0);
    a.ecall();

    a.ro_label("jt");
    a.ro_addr("h_incr");
    a.ro_addr("h_incr");
    a.ro_addr("h_exit");
    a.ro_addr("h_exit_flush");

    let p = a.finish().expect("assembles");
    let mut m = Machine::new(SimConfig::fpga_rocket(), &p);
    m.map("data", 0x10_0000, 4096);
    for (i, &bc) in bytecodes.iter().enumerate() {
        m.mem.write_u32(0x10_0000 + 4 * i as u64, bc).expect("mapped");
    }
    m.run(100_000).expect("halts");
    m
}

fn show(m: &Machine, caption: &str) {
    println!("-- {caption}");
    for (kind, key, target) in m.btb().snapshot() {
        match kind {
            EntryKind::Jte => println!(
                "   V=1 J/B=J  opcode {key:>5?}      -> target {target:#x}   (jump table entry)"
            ),
            EntryKind::Pc => println!(
                "   V=1 J/B=B  pc>>2 {key:#7x} -> target {target:#x}   (BTB entry)"
            ),
            EntryKind::Vbbi => println!(
                "   V=1 J/B=V  hash  {key:#7x} -> target {target:#x}   (VBBI entry)"
            ),
        }
    }
    println!(
        "   [bop executed {}, bop hits {}, jru JTE inserts {}, jte.flush count {}]\n",
        m.stats.bop_executed, m.stats.bop_hits, m.stats.btb.jte_inserts, m.stats.btb.jte_flushes
    );
}

fn main() {
    println!("Figure 6 walk-through: the life cycle of jump table entries in the BTB\n");

    // (b) Step 1, slow path: the first OP_LOAD misses in bop; the slow
    // path runs and jru inserts the (opcode 0 -> handler) JTE. The exit
    // bytecode's dispatch also takes the slow path and inserts its JTE.
    show(
        &run_interp(&[0, 2]),
        "(b) slow path: first OP_LOAD dispatch missed in bop; jru inserted its JTE",
    );

    // (c) Step 2, fast path: a second OP_LOAD hits the freshly cached
    // JTE and bop short-circuits straight to the handler.
    show(
        &run_interp(&[0, 0, 2]),
        "(c) fast path: the second OP_LOAD dispatch hit in bop (1 short-circuit)",
    );

    // (d) jte.flush at loop exit: all JTEs invalidated, ordinary BTB
    // entries (the warm-up loop's branch) survive.
    show(
        &run_interp(&[0, 0, 3]),
        "(d) jte.flush on exit: JTEs gone, BTB entries survive",
    );
}
