//! Shows a script compiled to both bytecode formats — the 32-bit
//! register words of LVM (the paper's Lua analogue) and the
//! variable-length byte stream of SVM (the SpiderMonkey analogue).
//!
//! ```text
//! cargo run --release --example bytecode_listing [path/to/script.luma]
//! ```

use scd::luma;

const DEFAULT: &str = "
    fn sum_to(n) {
        var s = 0;
        for i = 1, n { s = s + i; }
        return s;
    }
    emit(sum_to(N));
";

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => DEFAULT.to_string(),
    };
    let script = match luma::parser::parse(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };

    let (lvm, _) = luma::lvm::compile_lvm(&script, &[("N", 10.0)])
        .or_else(|_| luma::lvm::compile_lvm(&script, &[]))
        .expect("compiles for LVM");
    println!("==== LVM ({} words, {} consts, {} functions) ====", lvm.code.len(), lvm.consts.len(), lvm.funcs.len());
    print!("{}", luma::lvm::listing(&lvm));

    let (svm, _) = luma::svm::compile_svm(&script, &[("N", 10.0)])
        .or_else(|_| luma::svm::compile_svm(&script, &[]))
        .expect("compiles for SVM");
    println!(
        "\n==== SVM ({} bytes, {} consts, {} functions) ====",
        svm.code.len(),
        svm.consts.len(),
        svm.funcs.len()
    );
    print!("{}", luma::svm::listing(&svm));
}
