//! Profiles a benchmark on the simulated core and prints where cycles
//! go — dispatcher vs handlers, plus the hottest individual
//! instructions with symbolized labels. This is the tooling view behind
//! the paper's Fig. 3.
//!
//! ```text
//! cargo run --release --example profile -- [benchmark] [baseline|scd]
//! ```

use scd::luma;
use scd::scd_guest::{self, GuestOptions, Scheme};
use scd::scd_sim::{Machine, SimConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "n-sieve".to_string());
    let scheme = match args.next().as_deref() {
        Some("baseline") | None => Scheme::Baseline,
        Some("scd") => Scheme::Scd,
        Some("threaded") => Scheme::Threaded,
        other => {
            eprintln!("unknown scheme {other:?}");
            std::process::exit(2);
        }
    };
    let b = luma::scripts::find(&bench).unwrap_or_else(|| {
        eprintln!(
            "unknown benchmark `{bench}`; available: {}",
            luma::scripts::BENCHMARKS.iter().map(|b| b.name).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    });

    let script = luma::parser::parse(b.source).expect("benchmark parses");
    let (p, init) = luma::lvm::compile_lvm(&script, &[("N", b.tiny_arg)]).expect("compiles");
    let img = scd_guest::build_lvm_image(&p, &init);
    let guest = scd_guest::build_lvm_guest(&img, scheme, GuestOptions::default());

    let mut m = Machine::new(SimConfig::embedded_a5(), &guest.program);
    m.set_annotations(guest.annotations.clone());
    m.enable_profiling();
    m.map("image", scd_guest::layout::IMAGE_BASE, (img.bytes.len() as u64 + 4095) & !4095);
    m.mem.write_bytes(scd_guest::layout::IMAGE_BASE, &img.bytes);
    m.map("globals", scd_guest::layout::GLOBALS_BASE, 1 << 20);
    for (i, g) in img.global_init.iter().enumerate() {
        m.mem.write_u64(scd_guest::layout::GLOBALS_BASE + 8 * i as u64, *g).expect("mapped");
    }
    m.map(
        "vstack+ctl",
        scd_guest::layout::VSTACK_BASE,
        scd_guest::layout::VSTACK_SIZE + scd_guest::layout::VMCTL_SIZE,
    );
    m.map("frames", scd_guest::layout::FRAME_BASE, scd_guest::layout::FRAME_SIZE);
    m.map("heap", scd_guest::layout::HEAP_BASE, scd_guest::layout::HEAP_SIZE);
    m.run(u64::MAX).expect("benchmark completes");

    let profile = m.profile().expect("profiling enabled").clone();
    println!(
        "{bench} [{}]: {} insts, {} cycles, IPC {:.3}\n",
        scheme.name(),
        m.stats.instructions,
        m.stats.cycles,
        m.stats.ipc()
    );

    // Cycle share of the dispatcher.
    let dispatch_cycles: u64 = guest
        .annotations
        .dispatch_ranges
        .iter()
        .map(|&(a, b2)| profile.cycles_in_range(a, b2 + 4))
        .sum();
    println!(
        "dispatcher cycles: {} ({:.1}% of total)",
        dispatch_cycles,
        100.0 * dispatch_cycles as f64 / m.stats.cycles as f64
    );

    // Per-opcode handler cycle shares, symbolized via h_<n> labels.
    let mut handlers: Vec<(String, u64)> = Vec::new();
    let mut bounds: Vec<(u64, String)> = guest
        .program
        .symbols
        .iter()
        .filter(|(k, _)| k.starts_with("h_"))
        .map(|(k, &v)| (v, k.clone()))
        .collect();
    bounds.sort_unstable();
    for w in 0..bounds.len() {
        let start = bounds[w].0;
        let end = bounds.get(w + 1).map(|b| b.0).unwrap_or(guest.program.text_end());
        let c = profile.cycles_in_range(start, end);
        if c > 0 {
            let opnum: usize = bounds[w].1[2..].parse().unwrap_or(999);
            let name = luma::lvm::Op::ALL
                .get(opnum)
                .map(|o| format!("{o:?}"))
                .unwrap_or_else(|| bounds[w].1.clone());
            handlers.push((name, c));
        }
    }
    handlers.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nhottest handlers:");
    for (name, c) in handlers.iter().take(10) {
        println!("  {name:<12} {c:>12} cycles ({:.1}%)", 100.0 * *c as f64 / m.stats.cycles as f64);
    }

    println!("\nhottest instructions:");
    for (pc, cycles, retired) in profile.hottest(12) {
        let idx = ((pc - guest.program.text_base) / 4) as usize;
        println!(
            "  {pc:#010x}: {:<28} {cycles:>10} cycles, {retired:>9} retired",
            guest.program.insts[idx].to_string()
        );
    }
}
