use scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd_sim::SimConfig;
use std::time::Instant;
fn main() {
    for name in ["fibo", "mandelbrot", "k-nucleotide"] {
        let b = luma::scripts::find(name).unwrap();
        println!("== {} (N={})", b.name, b.sim_arg);
        let base_cycles = {
            let t = Instant::now();
            let r = run_source(SimConfig::embedded_a5(), Vm::Lvm, b.source, &[("N", b.sim_arg)],
                Scheme::Baseline, GuestOptions::default(), u64::MAX).unwrap();
            println!("  baseline: insts={:>10} cycles={:>10} mpki={:.2} dispatch_frac={:.1}% icache_mpki={:.2}  wall={:?}",
                r.stats.instructions, r.stats.cycles, r.stats.branch_mpki(), 100.0*r.stats.dispatch_fraction(), r.stats.icache_mpki(), t.elapsed());
            r.stats.cycles
        };
        for (label, cfg, scheme) in [
            ("jt      ", SimConfig::embedded_a5(), Scheme::Threaded),
            ("vbbi    ", SimConfig::embedded_a5().with_vbbi(), Scheme::Baseline),
            ("scd     ", SimConfig::embedded_a5(), Scheme::Scd),
        ] {
            let r = run_source(cfg, Vm::Lvm, b.source, &[("N", b.sim_arg)], scheme, GuestOptions::default(), u64::MAX).unwrap();
            println!("  {label}: insts={:>10} cycles={:>10} mpki={:.2} speedup={:+.1}% bophits={} stalls={}",
                r.stats.instructions, r.stats.cycles, r.stats.branch_mpki(),
                100.0*(base_cycles as f64 / r.stats.cycles as f64 - 1.0), r.stats.bop_hits, r.stats.bop_stall_cycles);
        }
    }
}
