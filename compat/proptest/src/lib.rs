//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, vendored so tier-1 (`cargo build && cargo test`) works with no
//! network access (see ISSUE 1, satellite "vendor or feature-gate").
//!
//! It implements exactly the API subset this workspace's property tests
//! use — `proptest!`, `prop_assert*!`, `prop_assume!`, `prop_oneof!`,
//! integer-range / tuple / `Just` / `any::<T>()` strategies, `prop_map`,
//! `BoxedStrategy`, `prop::sample::select` and `prop::collection::vec` —
//! on top of a deterministic SplitMix64 generator. Differences from real
//! proptest:
//!
//! * cases are derived deterministically from the test's module path and
//!   name, so failures reproduce without a persistence file;
//! * there is no shrinking — the failing input is printed as generated;
//! * rejected cases (`prop_assume!`) count as passes rather than being
//!   re-drawn.
//!
//! The default case count is 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable, mirroring real proptest.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed.
        Fail(String),
        /// The case was rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected case with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to generate per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// Deterministic SplitMix64 generator seeding each case from the
    /// property name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds case `case` of property `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Rejection-free multiply-shift reduction is fine for tests.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Drives `f` for every case of `cfg`, panicking on the first failure
    /// (with the case index, so a run reproduces deterministically).
    pub fn run_cases(
        cfg: &Config,
        name: &str,
        mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        for case in 0..cfg.cases as u64 {
            let mut rng = TestRng::for_case(name, case);
            match f(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => {
                    panic!("property {name} failed at case {case}/{}: {reason}", cfg.cases)
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator. Unlike real proptest there is no shrinking:
    /// `generate` produces the final value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A/a);
    tuple_strategy!(A/a, B/b);
    tuple_strategy!(A/a, B/b, C/c);
    tuple_strategy!(A/a, B/b, C/c, D/d);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mix raw bit patterns (covers inf/NaN/subnormals) with
            // "ordinary" magnitudes that arithmetic actually produces.
            if rng.next_u64() & 1 == 0 {
                f64::from_bits(rng.next_u64())
            } else {
                let m = rng.next_u64() as i64 as f64;
                m / 1024.0
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one element of a non-empty collection.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniform choice from a slice or `Vec` of values.
    pub fn select<T: Clone>(items: impl Into<Vec<T>>) -> Select<T> {
        let items = items.into();
        assert!(!items.is_empty(), "select over an empty collection");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_cases(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        $(let $arg =
                            $crate::strategy::Strategy::generate(&($strat), rng);)+
                        let case = || -> ::core::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                            $body
                            ::core::result::Result::Ok(())
                        };
                        case()
                    },
                );
            }
        )*
    };
}

/// Uniform choice between alternative strategies producing the same
/// value type. (Real proptest's per-arm weights are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Rejects the current case unless `cond` holds (counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn determinism() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let w = (0u8..3).generate(&mut rng);
            assert!(w < 3);
            let x = (-2i32..=2).generate(&mut rng);
            assert!((-2..=2).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u32..100, pair in (0i64..4, prop::sample::select(vec![1, 2, 3]))) {
            prop_assert!(x < 100);
            prop_assert_ne!(pair.1, 0);
            prop_assume!(pair.0 != 17); // never rejects
            prop_assert_eq!(pair.0, pair.0);
        }

        #[test]
        fn oneof_and_collections(v in prop::collection::vec(prop_oneof![0u64..3, Just(9u64)], 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 3 || x == 9));
        }
    }
}
