//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, vendored so the workspace builds with no network
//! access. It implements the subset the `scd-bench` benches use —
//! `Criterion::bench_function`, `benchmark_group`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros — with simple
//! wall-clock calibration instead of statistical analysis.
//!
//! When invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) each benchmark body runs exactly
//! once, untimed, so test runs stay fast.

use std::time::{Duration, Instant};

/// Re-export matching criterion's public `black_box`.
pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(20);

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Builds a driver; `--test` on the command line selects run-once
    /// test mode.
    pub fn new() -> Self {
        Criterion { test_mode: std::env::args().any(|a| a == "--test") }
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.as_ref();
        let mut b = Bencher { test_mode: self.test_mode, ns_per_iter: 0.0 };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok (run once)");
        } else {
            println!("{name:<40} {:>12.1} ns/iter", b.ns_per_iter);
        }
        self
    }

    /// Starts a named group; member benchmarks get `group/`-prefixed
    /// names.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_string() }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::new()
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        self.c.bench_function(full, f);
        self
    }

    /// Sets the per-benchmark sample count (accepted for API
    /// compatibility; this harness sizes batches by wall-clock time).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    test_mode: bool,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, doubling the batch size until the batch takes at
    /// least [`TARGET`] wall-clock time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.test_mode {
            black_box(f());
            return;
        }
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                return;
            }
            n = n.saturating_mul(2);
        }
    }
}

/// Bundles benchmark functions into one group function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($f(c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { test_mode: false, ns_per_iter: 0.0 };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion { test_mode: true };
        c.benchmark_group("g").bench_function("one", |b| b.iter(|| 1 + 1));
    }
}
